(* Length-prefixed binary wire codec for every protocol message.

   Frame layout, wire v2 (all integers big-endian):

     +--------+-------+---------+-----+-------+----------------+---------+
     | len u32| 'P''2'| version | tag | flags | trace (16 B)?  | payload |
     +--------+-------+---------+-----+-------+----------------+---------+

   [len] counts the bytes after the length word (magic + version + tag +
   flags + optional trace header + payload).  [flags] bit 0 says a trace
   header follows — operation id (8 bytes) then parent span id (8
   bytes) — and bit 1 carries the head-sampling decision, so a relay
   can propagate trace context without re-hashing the op id.  Wire v1
   frames (no flags byte, payload straight after the tag) still decode;
   the encoder always emits v2.

   Integers in payloads are 8-byte two's complement (OCaml's 63-bit ints
   round-trip exactly); strings are u32-length-prefixed bytes; lists are
   u32-count-prefixed elements.  Decoding never raises: every malformed
   input — bad magic, unknown version or tag, bad flag bits, truncated
   payload or trace header, oversized frame — comes back as [Error]. *)

let version = 2

(* Still accepted by the decoder: PR-8 peers and checked-in captures. *)
let version_v1 = 1

let magic0 = 'P'
let magic1 = '2'

(* Frames larger than this are rejected as corruption rather than
   trusted as an allocation size. *)
let max_body = 16 * 1024 * 1024

type role = T | S

(* Cross-process trace context: the operation id the frame belongs to,
   the sender-side span that caused it (the receiver's parent), and the
   head-sampling bit.  [tc_parent = -1] means "no causal parent" (the
   receiver hangs its span off the op root it knows, if any). *)
type trace_ctx = { tc_op : int; tc_parent : int; tc_sampled : bool }

type msg =
  | Hello of { node : int; p_id : int }
  | Ping of { nonce : int }
  | Pong of { nonce : int }
  | Join_request of { host : int; p_id : int; role : role }
  | Join_welcome of { succ : int; pred : int }
  | Attach_child of { parent : int; child : int }
  | Stabilize_notify of { host : int; p_id : int }
  | Leave of { host : int }
  | Insert of {
      op : int;
      origin : int;
      route_id : int;
      key : string;
      value : string;
      hops : int;
    }
  | Insert_ack of { op : int; holder : int; hops : int }
  | Lookup of {
      op : int;
      origin : int;
      route_id : int;
      key : string;
      ttl : int;
      hops : int;
    }
  | Found of { op : int; key : string; value : string; holder : int; hops : int }
  | Not_found of { op : int; key : string; hops : int }
  | Flood of { op : int; route_id : int; key : string; ttl : int }
  | Walk of { op : int; route_id : int; key : string; ttl : int }
  | Replicate of { route_id : int; key : string; value : string }
  | Digest of { left : int; right : int; digest : int }
  | Digest_pull of { left : int; right : int }
  | Tracker_announce of { host : int; p_id : int; port : int }
  | Tracker_peers of { peers : (int * int * int) list }
  | Client_insert of { req : int; key : string; value : string }
  | Client_lookup of { req : int; key : string }
  | Client_reply of {
      req : int;
      found : bool;
      value : string;
      holder : int;
      hops : int;
    }
  | Status_request of { req : int }
  | Status of {
      req : int;
      node : int;
      ready : bool;
      store : int;
      violations : int;
    }
  | Shutdown
  | Scrape_request of { req : int; port : int; spans : bool }
      (** poll one node's registry snapshot; [port] is where the scraper
          listens (so an aggregator outside the ring's address book can
          be dialled back), [spans] asks for retained chrome span events
          in the snapshot *)
  | Scrape_reply of { req : int; node : int; snapshot : string }
      (** the node's serialized {!P2p_obs.Scrape} snapshot (JSON) *)

let tag_of = function
  | Hello _ -> 1
  | Ping _ -> 2
  | Pong _ -> 3
  | Join_request _ -> 4
  | Join_welcome _ -> 5
  | Attach_child _ -> 6
  | Stabilize_notify _ -> 7
  | Leave _ -> 8
  | Insert _ -> 9
  | Insert_ack _ -> 10
  | Lookup _ -> 11
  | Found _ -> 12
  | Not_found _ -> 13
  | Flood _ -> 14
  | Walk _ -> 15
  | Replicate _ -> 16
  | Digest _ -> 17
  | Digest_pull _ -> 18
  | Tracker_announce _ -> 19
  | Tracker_peers _ -> 20
  | Client_insert _ -> 21
  | Client_lookup _ -> 22
  | Client_reply _ -> 23
  | Status_request _ -> 24
  | Status _ -> 25
  | Shutdown -> 26
  | Scrape_request _ -> 27
  | Scrape_reply _ -> 28

let tag_name = function
  | Hello _ -> "hello"
  | Ping _ -> "ping"
  | Pong _ -> "pong"
  | Join_request _ -> "join_request"
  | Join_welcome _ -> "join_welcome"
  | Attach_child _ -> "attach_child"
  | Stabilize_notify _ -> "stabilize_notify"
  | Leave _ -> "leave"
  | Insert _ -> "insert"
  | Insert_ack _ -> "insert_ack"
  | Lookup _ -> "lookup"
  | Found _ -> "found"
  | Not_found _ -> "not_found"
  | Flood _ -> "flood"
  | Walk _ -> "walk"
  | Replicate _ -> "replicate"
  | Digest _ -> "digest"
  | Digest_pull _ -> "digest_pull"
  | Tracker_announce _ -> "tracker_announce"
  | Tracker_peers _ -> "tracker_peers"
  | Client_insert _ -> "client_insert"
  | Client_lookup _ -> "client_lookup"
  | Client_reply _ -> "client_reply"
  | Status_request _ -> "status_request"
  | Status _ -> "status"
  | Shutdown -> "shutdown"
  | Scrape_request _ -> "scrape_request"
  | Scrape_reply _ -> "scrape_reply"

(* --- encoding -------------------------------------------------------- *)

let put_int b v =
  Buffer.add_int64_be b (Int64.of_int v)

let put_u32 b v =
  Buffer.add_int32_be b (Int32.of_int v)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let put_role b = function T -> Buffer.add_char b 'T' | S -> Buffer.add_char b 'S'

let flag_trace = 0x01
let flag_sampled = 0x02

(* Bytes a frame carries beyond its v1 layout: the flags byte, plus the
   16-byte trace header when context is stamped.  This is what the
   [wire/trace_bytes] stat counts, so "v2 overhead vs v1" is exact. *)
let trace_overhead = function None -> 1 | Some _ -> 1 + 16

let encode_body ?trace msg =
  let b = Buffer.create 64 in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr (tag_of msg));
  (match trace with
   | None -> Buffer.add_char b '\000'
   | Some { tc_op; tc_parent; tc_sampled } ->
     Buffer.add_char b
       (Char.chr (flag_trace lor if tc_sampled then flag_sampled else 0));
     put_int b tc_op;
     put_int b tc_parent);
  (match msg with
   | Hello { node; p_id } ->
     put_int b node;
     put_int b p_id
   | Ping { nonce } | Pong { nonce } -> put_int b nonce
   | Join_request { host; p_id; role } ->
     put_int b host;
     put_int b p_id;
     put_role b role
   | Join_welcome { succ; pred } ->
     put_int b succ;
     put_int b pred
   | Attach_child { parent; child } ->
     put_int b parent;
     put_int b child
   | Stabilize_notify { host; p_id } ->
     put_int b host;
     put_int b p_id
   | Leave { host } -> put_int b host
   | Insert { op; origin; route_id; key; value; hops } ->
     put_int b op;
     put_int b origin;
     put_int b route_id;
     put_string b key;
     put_string b value;
     put_int b hops
   | Insert_ack { op; holder; hops } ->
     put_int b op;
     put_int b holder;
     put_int b hops
   | Lookup { op; origin; route_id; key; ttl; hops } ->
     put_int b op;
     put_int b origin;
     put_int b route_id;
     put_string b key;
     put_int b ttl;
     put_int b hops
   | Found { op; key; value; holder; hops } ->
     put_int b op;
     put_string b key;
     put_string b value;
     put_int b holder;
     put_int b hops
   | Not_found { op; key; hops } ->
     put_int b op;
     put_string b key;
     put_int b hops
   | Flood { op; route_id; key; ttl } | Walk { op; route_id; key; ttl } ->
     put_int b op;
     put_int b route_id;
     put_string b key;
     put_int b ttl
   | Replicate { route_id; key; value } ->
     put_int b route_id;
     put_string b key;
     put_string b value
   | Digest { left; right; digest } ->
     put_int b left;
     put_int b right;
     put_int b digest
   | Digest_pull { left; right } ->
     put_int b left;
     put_int b right
   | Tracker_announce { host; p_id; port } ->
     put_int b host;
     put_int b p_id;
     put_int b port
   | Tracker_peers { peers } ->
     put_u32 b (List.length peers);
     List.iter
       (fun (host, p_id, port) ->
         put_int b host;
         put_int b p_id;
         put_int b port)
       peers
   | Client_insert { req; key; value } ->
     put_int b req;
     put_string b key;
     put_string b value
   | Client_lookup { req; key } ->
     put_int b req;
     put_string b key
   | Client_reply { req; found; value; holder; hops } ->
     put_int b req;
     put_bool b found;
     put_string b value;
     put_int b holder;
     put_int b hops
   | Status_request { req } -> put_int b req
   | Status { req; node; ready; store; violations } ->
     put_int b req;
     put_int b node;
     put_bool b ready;
     put_int b store;
     put_int b violations
   | Shutdown -> ()
   | Scrape_request { req; port; spans } ->
     put_int b req;
     put_int b port;
     put_bool b spans
   | Scrape_reply { req; node; snapshot } ->
     put_int b req;
     put_int b node;
     put_string b snapshot);
  Buffer.contents b

let encode ?trace msg =
  let body = encode_body ?trace msg in
  let b = Buffer.create (4 + String.length body) in
  put_u32 b (String.length body);
  Buffer.add_string b body;
  Buffer.contents b

(* --- decoding -------------------------------------------------------- *)

type cursor = { data : string; mutable pos : int }

exception Bad of string

let need c n =
  if c.pos + n > String.length c.data then
    raise (Bad (Printf.sprintf "truncated at byte %d (want %d more)" c.pos n))

let get_int c =
  need c 8;
  let v = Int64.to_int (String.get_int64_be c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.data c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Bad "negative length");
  v

let get_char c =
  need c 1;
  let ch = c.data.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let get_string c =
  let n = get_u32 c in
  if n > max_body then raise (Bad "oversized string");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c =
  match get_char c with
  | '\000' -> false
  | '\001' -> true
  | ch -> raise (Bad (Printf.sprintf "bad bool byte %#x" (Char.code ch)))

let get_role c =
  match get_char c with
  | 'T' -> T
  | 'S' -> S
  | ch -> raise (Bad (Printf.sprintf "bad role byte %#x" (Char.code ch)))

let decode_payload c tag =
  match tag with
  | 1 ->
    let node = get_int c in
    let p_id = get_int c in
    Hello { node; p_id }
  | 2 -> Ping { nonce = get_int c }
  | 3 -> Pong { nonce = get_int c }
  | 4 ->
    let host = get_int c in
    let p_id = get_int c in
    let role = get_role c in
    Join_request { host; p_id; role }
  | 5 ->
    let succ = get_int c in
    let pred = get_int c in
    Join_welcome { succ; pred }
  | 6 ->
    let parent = get_int c in
    let child = get_int c in
    Attach_child { parent; child }
  | 7 ->
    let host = get_int c in
    let p_id = get_int c in
    Stabilize_notify { host; p_id }
  | 8 -> Leave { host = get_int c }
  | 9 ->
    let op = get_int c in
    let origin = get_int c in
    let route_id = get_int c in
    let key = get_string c in
    let value = get_string c in
    let hops = get_int c in
    Insert { op; origin; route_id; key; value; hops }
  | 10 ->
    let op = get_int c in
    let holder = get_int c in
    let hops = get_int c in
    Insert_ack { op; holder; hops }
  | 11 ->
    let op = get_int c in
    let origin = get_int c in
    let route_id = get_int c in
    let key = get_string c in
    let ttl = get_int c in
    let hops = get_int c in
    Lookup { op; origin; route_id; key; ttl; hops }
  | 12 ->
    let op = get_int c in
    let key = get_string c in
    let value = get_string c in
    let holder = get_int c in
    let hops = get_int c in
    Found { op; key; value; holder; hops }
  | 13 ->
    let op = get_int c in
    let key = get_string c in
    let hops = get_int c in
    Not_found { op; key; hops }
  | 14 ->
    let op = get_int c in
    let route_id = get_int c in
    let key = get_string c in
    let ttl = get_int c in
    Flood { op; route_id; key; ttl }
  | 15 ->
    let op = get_int c in
    let route_id = get_int c in
    let key = get_string c in
    let ttl = get_int c in
    Walk { op; route_id; key; ttl }
  | 16 ->
    let route_id = get_int c in
    let key = get_string c in
    let value = get_string c in
    Replicate { route_id; key; value }
  | 17 ->
    let left = get_int c in
    let right = get_int c in
    let digest = get_int c in
    Digest { left; right; digest }
  | 18 ->
    let left = get_int c in
    let right = get_int c in
    Digest_pull { left; right }
  | 19 ->
    let host = get_int c in
    let p_id = get_int c in
    let port = get_int c in
    Tracker_announce { host; p_id; port }
  | 20 ->
    let n = get_u32 c in
    if n > max_body / 24 then raise (Bad "oversized peer list");
    let peers =
      List.init n (fun _ ->
          let host = get_int c in
          let p_id = get_int c in
          let port = get_int c in
          (host, p_id, port))
    in
    Tracker_peers { peers }
  | 21 ->
    let req = get_int c in
    let key = get_string c in
    let value = get_string c in
    Client_insert { req; key; value }
  | 22 ->
    let req = get_int c in
    let key = get_string c in
    Client_lookup { req; key }
  | 23 ->
    let req = get_int c in
    let found = get_bool c in
    let value = get_string c in
    let holder = get_int c in
    let hops = get_int c in
    Client_reply { req; found; value; holder; hops }
  | 24 -> Status_request { req = get_int c }
  | 25 ->
    let req = get_int c in
    let node = get_int c in
    let ready = get_bool c in
    let store = get_int c in
    let violations = get_int c in
    Status { req; node; ready; store; violations }
  | 26 -> Shutdown
  | 27 ->
    let req = get_int c in
    let port = get_int c in
    let spans = get_bool c in
    Scrape_request { req; port; spans }
  | 28 ->
    let req = get_int c in
    let node = get_int c in
    let snapshot = get_string c in
    Scrape_reply { req; node; snapshot }
  | tag -> raise (Bad (Printf.sprintf "unknown tag %d" tag))

let decode_body body =
  let c = { data = body; pos = 0 } in
  match
    if get_char c <> magic0 || get_char c <> magic1 then raise (Bad "bad magic");
    let v = Char.code (get_char c) in
    if v <> version && v <> version_v1 then
      raise (Bad (Printf.sprintf "unknown version %d" v));
    let tag = Char.code (get_char c) in
    let trace =
      if v = version_v1 then None
      else begin
        let flags = Char.code (get_char c) in
        if flags land lnot (flag_trace lor flag_sampled) <> 0 then
          raise (Bad (Printf.sprintf "unknown flag bits %#x" flags));
        if flags land flag_trace = 0 then None
        else begin
          let tc_op = get_int c in
          let tc_parent = get_int c in
          Some { tc_op; tc_parent; tc_sampled = flags land flag_sampled <> 0 }
        end
      end
    in
    let msg = decode_payload c tag in
    if c.pos <> String.length body then
      raise (Bad (Printf.sprintf "%d trailing bytes" (String.length body - c.pos)));
    (msg, trace)
  with
  | result -> Ok result
  | exception Bad reason -> Error reason
  | exception _ -> Error "malformed frame"

(* [decode_traced ?off buf] reads one frame starting at [off] (default
   0): [Ok (Some (msg, trace, consumed))] on a complete frame —
   [consumed] counts from [off], [trace] is the frame's trace context if
   stamped — [Ok None] when more bytes are needed, [Error] on
   corruption.  Stream readers call it in a loop, advancing [off] by
   [consumed] each time, so a backlog of buffered frames drains without
   re-copying the buffer per frame. *)
let decode_traced ?(off = 0) buf =
  let len = String.length buf - off in
  if len < 4 then Ok None
  else begin
    let body_len = Int32.to_int (String.get_int32_be buf off) in
    if body_len < 4 then Error "frame too short for header"
    else if body_len > max_body then
      Error (Printf.sprintf "frame of %d bytes exceeds cap" body_len)
    else if len < 4 + body_len then Ok None
    else
      match decode_body (String.sub buf (off + 4) body_len) with
      | Ok (msg, trace) -> Ok (Some (msg, trace, 4 + body_len))
      | Error e -> Error e
  end

(* Context-blind view of {!decode_traced} for callers that predate the
   trace header (tests, tools). *)
let decode ?off buf =
  match decode_traced ?off buf with
  | Ok None -> Ok None
  | Ok (Some (msg, _, consumed)) -> Ok (Some (msg, consumed))
  | Error e -> Error e

(* --- golden exemplars ------------------------------------------------- *)

(* One canonical value per message kind, in tag order.  The checked-in
   [test/golden/wire_v2.bin] is the concatenated encoding of this list
   (trace context stamped on the data-path messages, absent elsewhere);
   changing the codec or this list without regenerating the golden file
   fails the round-trip test.  [test/golden/wire_v1.bin] is the frozen
   v1 encoding of the first 26 kinds and must keep decoding forever. *)
let golden_exemplars =
  [
    Hello { node = 3; p_id = 0x1234_5678 };
    Ping { nonce = 42 };
    Pong { nonce = 42 };
    Join_request { host = 17; p_id = 0x0fed_cba9; role = T };
    Join_welcome { succ = 4; pred = 2 };
    Attach_child { parent = 5; child = 11 };
    Stabilize_notify { host = 7; p_id = 99 };
    Leave { host = 13 };
    Insert
      {
        op = 1001;
        origin = 2;
        route_id = 0x7fff_ffff;
        key = "song/track-01";
        value = "payload bytes \x00\x01\xff";
        hops = 3;
      };
    Insert_ack { op = 1001; holder = 6; hops = 4 };
    Lookup
      {
        op = 2002;
        origin = 1;
        route_id = 0;
        key = "needle";
        ttl = 4;
        hops = 0;
      };
    Found { op = 2002; key = "needle"; value = "hay"; holder = 6; hops = 5 };
    Not_found { op = 2003; key = "missing"; hops = 7 };
    Flood { op = 3001; route_id = 77; key = "flood-key"; ttl = 2 };
    Walk { op = 3002; route_id = 78; key = "walk-key"; ttl = 6 };
    Replicate { route_id = 4242; key = "copy"; value = "of this" };
    Digest { left = 100; right = 200; digest = 0x5ca1_ab1e };
    Digest_pull { left = 100; right = 200 };
    Tracker_announce { host = 0; p_id = 12345; port = 4700 };
    Tracker_peers { peers = [ (0, 10, 4700); (1, 20, 4701); (2, 30, 4702) ] };
    Client_insert { req = 1; key = "k"; value = "v" };
    Client_lookup { req = 2; key = "k" };
    Client_reply { req = 2; found = true; value = "v"; holder = 3; hops = 2 };
    Status_request { req = 9 };
    Status { req = 9; node = 4; ready = true; store = 25; violations = 0 };
    Shutdown;
    Scrape_request { req = 77; port = 4910; spans = true };
    Scrape_reply { req = 77; node = 4; snapshot = "{\"type\":\"scrape\"}" };
  ]

(* Trace contexts stamped on the golden data-path frames: one sampled,
   one relayed (non-root parent), one unsampled-but-stamped, so the
   golden bytes pin all flag combinations the encoder emits. *)
let golden_trace_exemplars =
  [
    (Lookup
       {
         op = 2002;
         origin = 1;
         route_id = 0;
         key = "needle";
         ttl = 4;
         hops = 0;
       },
     Some { tc_op = 2002; tc_parent = -1; tc_sampled = true });
    (Found { op = 2002; key = "needle"; value = "hay"; holder = 6; hops = 5 },
     Some { tc_op = 2002; tc_parent = 31; tc_sampled = true });
    (Insert
       {
         op = 1001;
         origin = 2;
         route_id = 0x7fff_ffff;
         key = "song/track-01";
         value = "payload bytes \x00\x01\xff";
         hops = 3;
       },
     Some { tc_op = 1001; tc_parent = 7; tc_sampled = false });
  ]
