(** Data insertion and lookup (Section 3.4).

    Both operations try the local s-network first and fall back to the
    t-network: the two-tier flow that lets the hybrid system answer most
    queries cheaply while staying accurate.

    {b Insertion}: the generating peer keeps items its own s-network
    serves; others travel through the t-network to the owning t-peer,
    which either keeps them (placement scheme A, [Store_at_tpeer]) or
    spreads them down its tree by a random walk (scheme B,
    [Spread_to_neighbors]).

    {b Lookup}: a TTL-bounded flood in the covering s-network, reached
    either directly (local data), over a bypass link (Section 5.4), or by
    ring forwarding through the t-network.  A peer holding the item replies
    straight to the requester and stops forwarding; a timer at the
    requester declares failure.  In BitTorrent-style s-networks
    (Section 5.5) the t-peer answers from its tracker index instead of
    flooding. *)

type lookup_outcome =
  | Found of { holder : Peer.t; latency : float; hops : int }
      (** [latency] in simulated ms, [hops] = overlay hops the request
          travelled before the item was located *)
  | Timed_out

(** [insert w ~from ~key ~value ()] stores the item; [on_done] fires
    (at the simulated completion instant) with the final holder and the
    overlay hop count the insertion travelled.  [route_id] overrides the
    routing ID (default: the key's hash) — interest-based s-networks
    (Section 5.3) route a whole category under {!Interest.route_id}.
    A trace operation id is minted at initiation ({!P2p_sim.Trace.begin_op}
    with kind [Insert]); every message the insertion causes carries it. *)
val insert :
  World.t ->
  from:Peer.t ->
  key:string ->
  value:string ->
  ?route_id:P2p_hashspace.Id_space.id ->
  unit ->
  on_done:(holder:Peer.t -> hops:int -> unit) ->
  unit

(** [lookup w ~from ~key ?ttl ~on_result] resolves [key] and reports the
    outcome exactly once — when the value arrives or when the lookup timer
    expires.  [ttl] defaults to the configured flood TTL.  Metrics
    (issued/success/failure counters, latency, connum) are recorded on the
    world's metrics sink.  A trace operation id (kind [Lookup]) is minted
    at initiation and stamped on every message of the resolution — ring
    forwarding, s-network flood/walks, and the reply — so the whole lookup
    can be replayed from the trace ({!P2p_sim.Trace.events_of_op}). *)
val lookup :
  World.t ->
  from:Peer.t ->
  key:string ->
  ?ttl:int ->
  ?route_id:P2p_hashspace.Id_space.id ->
  unit ->
  on_result:(lookup_outcome -> unit) ->
  unit

(** {1 Partial / keyword search (Section 5.3)}

    Interest-based s-networks support partial search: the field of
    interest selects the s-network (via its routing ID), and the query
    floods that s-network collecting every key containing the requested
    substring. *)

type keyword_match = { match_key : string; match_holder : Peer.t }

(** [keyword_lookup w ~from ~substring ~route_id ~window ()] floods the
    s-network serving [route_id] and reports, after [window] simulated
    ms, every stored key containing [substring] (with its holder).
    [on_result] fires exactly once.  A trace operation id (kind [Keyword])
    spans the flood and the match replies. *)
val keyword_lookup :
  World.t ->
  from:Peer.t ->
  substring:string ->
  route_id:P2p_hashspace.Id_space.id ->
  ?ttl:int ->
  window:float ->
  unit ->
  on_result:(keyword_match list -> unit) ->
  unit
