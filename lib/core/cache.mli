(** Per-peer soft-state cache of popular data items.

    This implements the caching scheme the paper lists as future work
    (Section 7): when extremely popular data is requested by many peers,
    the hosting peer is overwhelmed; spreading copies across requesters
    and forwarders diffuses that load.  Entries expire after a lifetime
    and the cache evicts the entry closest to expiry when full — cheap,
    and popular items keep getting refreshed anyway.

    Eviction order is maintained by a min-expiry binary heap with lazy
    deletion, so [put] is O(log capacity) rather than a full-table scan
    per eviction. *)

type t

(** [create ~capacity] makes an empty cache holding at most [capacity]
    entries.  @raise Invalid_argument if [capacity < 0]. *)
val create : capacity:int -> t

val size : t -> int
val capacity : t -> int

(** [put t ~now ~lifetime ~key ~value] inserts or refreshes an entry
    expiring at [now + lifetime], evicting the soonest-to-expire entry if
    the cache is full.  A no-op on zero-capacity caches. *)
val put : t -> now:float -> lifetime:float -> key:string -> value:string -> unit

(** [find t ~now ~key] returns the cached value if present and fresh;
    expired entries are dropped on access. *)
val find : t -> now:float -> key:string -> string option

(** [hits t] / [misses t]: lifetime counters for [find] calls on this
    cache (a miss includes expired entries). *)
val hits : t -> int

val misses : t -> int

val clear : t -> unit
