bench/table2.ml: Experiments H List Metrics
