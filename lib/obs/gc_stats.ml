(* OCaml runtime gauges under subsystem "gc", fed from Gc.quick_stat
   deltas.  quick_stat reads a handful of fields without walking the
   heap, so updating on every sampler tick (and once at the end of a
   run) is safe even at million-peer scale.  The allocation rate is the
   ROADMAP's hot-path signal: minor+major words allocated per host CPU
   second, the number the next speed pass needs to drive down. *)

let word_bytes = float_of_int (Sys.word_size / 8)

type t = {
  alloc_rate : Registry.gauge;
  allocated_total : Registry.gauge;
  heap : Registry.gauge;
  minor : Registry.gauge;
  major : Registry.gauge;
  compactions : Registry.gauge;
  mutable last_words : float;
  mutable last_cpu : float;
  base_words : float; (* allocation before [create]: not ours to report *)
}

let allocated_words (s : Gc.stat) =
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let create reg =
  let g name = Registry.gauge reg ~subsystem:"gc" ~name in
  let s = Gc.quick_stat () in
  let words = allocated_words s in
  {
    alloc_rate = g "alloc_rate_mb_s";
    allocated_total = g "allocated_mb_total";
    heap = g "heap_mb";
    minor = g "minor_collections";
    major = g "major_collections";
    compactions = g "compactions";
    last_words = words;
    last_cpu = Sys.time ();
    base_words = words;
  }

let update t =
  let s = Gc.quick_stat () in
  let words = allocated_words s in
  let cpu = Sys.time () in
  let dt = cpu -. t.last_cpu in
  if dt > 0.0 then begin
    Registry.set t.alloc_rate
      ((words -. t.last_words) *. word_bytes /. dt /. 1e6);
    t.last_words <- words;
    t.last_cpu <- cpu
  end;
  Registry.set t.allocated_total ((words -. t.base_words) *. word_bytes /. 1e6);
  Registry.set t.heap (float_of_int s.Gc.heap_words *. word_bytes /. 1e6);
  Registry.set t.minor (float_of_int s.Gc.minor_collections);
  Registry.set t.major (float_of_int s.Gc.major_collections);
  Registry.set t.compactions (float_of_int s.Gc.compactions)
