type kind = One_shot | Periodic

(* Armed: a live entry sits in the event queue.  Fired: a one-shot ran to
   completion (periodics re-arm before running the action, so they only
   reach Fired through the action cancelling them mid-tick).  Cancelled:
   disarmed by the owner.  A cancel that arrives after the timer already
   fired is a silent no-op counted under [cancel_late] — it must NOT
   touch the queue, or the dead handle would linger as a ghost entry
   until compaction. *)
type state = Armed | Fired | Cancelled

type t = {
  engine : Engine.t;
  delay : float;
  kind : kind;
  label : string;
  action : unit -> unit;
  mutable handle : Engine.handle option;
  mutable state : state;
}

(* Cancels that arrived after the timer had already fired.  One shared
   monotonic counter for the whole process: the sim engine and the live
   timer wheel agree on the semantics, and observability layers export
   the figure as the [timer/cancel_late] gauge. *)
let cancel_late_total = ref 0

let cancel_late () = !cancel_late_total

let note_cancel_late () = incr cancel_late_total

let arm t =
  let rec fire () =
    t.handle <- None;
    t.state <- Fired;
    (match t.kind with
     | Periodic ->
       t.state <- Armed;
       t.handle <- Some (Engine.schedule ~label:t.label t.engine ~delay:t.delay fire)
     | One_shot -> ());
    t.action ()
  in
  t.state <- Armed;
  t.handle <- Some (Engine.schedule ~label:t.label t.engine ~delay:t.delay fire)

let one_shot ?(label = "timer") engine ~delay action =
  let t =
    { engine; delay; kind = One_shot; label; action; handle = None; state = Armed }
  in
  arm t;
  t

let periodic ?(label = "timer") engine ~period action =
  let t =
    { engine; delay = period; kind = Periodic; label; action; handle = None;
      state = Armed }
  in
  arm t;
  t

let cancel t =
  match t.handle with
  | None ->
    (* Already fired (late cancel, counted) or already cancelled
       (idempotent): either way there is no queue entry to kill. *)
    if t.state = Fired then begin
      t.state <- Cancelled;
      note_cancel_late ()
    end
  | Some h ->
    Engine.cancel h;
    t.handle <- None;
    t.state <- Cancelled

let reset t =
  (match t.handle with
   | None -> ()
   | Some h ->
     Engine.cancel h;
     t.handle <- None);
  arm t

let active t = t.handle <> None
