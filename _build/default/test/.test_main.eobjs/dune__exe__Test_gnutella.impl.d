test/test_gnutella.ml: Alcotest List P2p_gnutella P2p_sim Printf
