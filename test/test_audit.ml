(* Online invariant auditing: the check catalogue over clean and
   deliberately corrupted systems, the periodic auditor's trace/registry
   reporting, and the scenario-level audit cadence. *)

open Helpers
module Checks = P2p_audit.Checks
module Auditor = P2p_audit.Auditor
module Trace = P2p_sim.Trace
module Registry = P2p_obs.Registry
module Metrics = P2p_net.Metrics
module Data_store = Hybrid_p2p.Data_store
module Scenario = P2p_scenario.Scenario

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let no_violations snap =
  match Checks.violations snap with
  | [] -> ()
  | v :: _ -> Alcotest.fail (Format.asprintf "unexpected %a" Checks.pp_violation v)

let audit_counter h name =
  Registry.counter_value
    (Registry.counter (Metrics.registry (H.metrics h)) ~subsystem:"audit" ~name)

(* --- catalogue over clean systems --- *)

let test_clean_system () =
  let h, _ = star_system ~n:50 ~ps:0.6 () in
  let _keys = insert_items h ~count:120 in
  no_violations (Checks.run_all (H.world h));
  ok_invariants h

let test_catalogue_names () =
  checki "nine checks" 9 (List.length Checks.all);
  List.iter
    (fun name ->
      match Checks.find name with
      | Some c -> Alcotest.check Alcotest.string "find round-trips" name (Checks.check_name c)
      | None -> Alcotest.fail ("missing check " ^ name))
    Checks.names;
  checkb "select resolves" true
    (match Checks.select [ "ring_symmetry"; "load_balance" ] with
     | Ok [ a; b ] ->
       Checks.check_name a = "ring_symmetry" && Checks.check_name b = "load_balance"
     | _ -> false);
  checkb "select rejects unknown" true
    (match Checks.select [ "ring_symmetry"; "nonsense" ] with
     | Error "nonsense" -> true
     | _ -> false)

(* Clean system under graceful churn: online ticks during joins, leaves
   and lookups must not misreport in-flight protocol as damage. *)
let test_online_clean_churn () =
  let h, _ = star_system ~n:30 ~ps:0.6 () in
  let a = Auditor.create ~interval:20.0 (H.world h) in
  let _ = H.grow h ~count:15 ~s_fraction:0.5 in
  Auditor.settle a;
  let keys = insert_items h ~count:60 in
  Auditor.settle a;
  List.iter
    (fun key -> ignore (lookup_sync h ~from:(H.random_peer h) ~key () : _))
    keys;
  Auditor.settle a;
  (* a few graceful leaves, drained through the auditor *)
  for _ = 1 to 4 do
    H.leave h (H.random_peer h) ();
    Auditor.settle a
  done;
  checkb "ticked repeatedly" true (Auditor.ticks a > 3);
  checki "no violations under graceful churn" 0 (Auditor.violations_total a);
  checkb "result ok" true (Result.is_ok (Auditor.result a))

(* --- deliberate corruption: the acceptance scenario --- *)

(* Force an s-peer over the degree cap while the auditor's periodic timer
   is armed: the next tick must emit a severity-tagged trace event and
   bump the matching audit/* counter. *)
let test_degree_corruption_detected () =
  let trace = Trace.create ~capacity:50_000 () in
  let h = H.create_star ~seed:7 ~peers:300 ~trace () in
  let _ = H.grow h ~count:40 ~s_fraction:0.6 in
  let a = Auditor.create ~interval:50.0 (H.world h) in
  Auditor.start a;
  checki "no tick yet" 0 (Auditor.ticks a);
  checki "counter starts at zero" 0 (audit_counter h "tree_structure_violations");
  (* over-cap wiring: stowaway children on the first root *)
  let root = (World.t_peers (H.world h)).(0) in
  let delta = (H.config h).Config.delta in
  for i = 1 to delta + 1 do
    let child =
      Peer.make ~host:(-i) ~p_id:root.Peer.p_id ~role:Peer.S_peer ~link_capacity:1.0 ()
    in
    Peer.attach_child ~parent:root ~child
  done;
  checkb "degree now over cap" true (Peer.tree_degree root > delta);
  H.run_for h 120.0;
  Auditor.stop a;
  checkb "timer ticked" true (Auditor.ticks a >= 2);
  checkb "errors counted" true (Auditor.errors_total a > 0);
  checkb "counter bumped" true (audit_counter h "tree_structure_violations" > 0);
  let events = Trace.find trace ~tag:"audit-error" in
  checkb "severity-tagged trace event" true (events <> []);
  checkb "event names the check" true
    (List.exists
       (fun e ->
         String.length e.Trace.detail >= 14
         && String.sub e.Trace.detail 0 14 = "tree_structure")
       events);
  (* violation events carry the audit tick's operation id *)
  checkb "event attributed to an audit op" true
    (List.for_all (fun e -> e.Trace.op <> None) events);
  checkb "result reports first error" true (Result.is_error (Auditor.result a))

let test_broken_successor_detected () =
  let h, _ = star_system ~n:25 ~ps:0.4 () in
  let w = H.world h in
  let arr = World.t_peers w in
  checkb "enough t-peers" true (Array.length arr >= 2);
  arr.(0).Peer.succ <- Some arr.(0);
  let a = Auditor.create ~interval:10.0 w in
  let snap = Auditor.tick a in
  let ring_errors =
    Checks.errors (Checks.violations snap)
    |> List.filter (fun v -> v.Checks.check = "ring_symmetry")
  in
  checkb "ring error found" true (ring_errors <> []);
  checkb "counter bumped" true (audit_counter h "ring_symmetry_violations" > 0);
  checkb "subject is the broken peer" true
    (List.exists (fun v -> v.Checks.subject = Some arr.(0).Peer.host) ring_errors)

let test_misplaced_item_detected () =
  let h, _ = star_system ~n:30 ~ps:0.5 () in
  let _ = insert_items h ~count:40 in
  let w = H.world h in
  let arr = World.t_peers w in
  checkb "enough t-peers" true (Array.length arr >= 2);
  let victim = arr.(0) in
  (* segment_left is exclusive, so an item routed exactly there is owned
     by the predecessor, never by [victim] *)
  Data_store.insert_routed victim.Peer.store
    ~route_id:(Peer.segment_left victim) ~key:"planted" ~value:"x";
  let snap = Checks.run_all w in
  let placement =
    Checks.violations snap |> List.filter (fun v -> v.Checks.check = "data_placement")
  in
  checkb "misplacement caught" true (placement <> []);
  checkb "is an error" true (Checks.errors placement <> []);
  checkb "to_result fails" true (Result.is_error (Checks.to_result snap))

(* Crash damage is damage: dead ring neighbours and stranded s-peers must
   surface as errors until repair, then disappear. *)
let test_crash_damage_then_repair () =
  let h, _ = star_system ~n:40 ~ps:0.6 () in
  let _ = insert_items h ~count:50 in
  for _ = 1 to 6 do
    H.crash h (H.random_peer h)
  done;
  let before = Checks.run_all (H.world h) in
  checkb "crash damage detected" true (Checks.violations before <> []);
  H.repair h;
  H.run h;
  no_violations (Checks.run_all (H.world h))

(* --- gauges --- *)

let test_load_balance_gauges () =
  let h, _ = star_system ~n:30 ~ps:0.5 () in
  let _ = insert_items h ~count:100 in
  let snap = Checks.run_all (H.world h) in
  let lb =
    List.find (fun (s : Checks.status) -> s.Checks.name = "load_balance")
      snap.Checks.statuses
  in
  let gauge name =
    match List.assoc_opt name lb.Checks.gauges with
    | Some v -> v
    | None -> Alcotest.fail ("missing gauge " ^ name)
  in
  checkb "items counted" true (gauge "items_total" >= 100.0);
  checkb "max >= mean" true (gauge "items_per_peer_max" >= gauge "items_per_peer_mean");
  let gini = gauge "items_gini" in
  checkb "gini in [0,1)" true (gini >= 0.0 && gini < 1.0)

let test_gini () =
  (* perfectly equal load -> 0; one peer holds everything -> close to 1 *)
  let equal = Checks.run_all in
  ignore equal;
  let h, _ = star_system ~n:20 ~ps:0.5 () in
  let snap = Checks.run_all (H.world h) in
  let lb =
    List.find (fun (s : Checks.status) -> s.Checks.name = "load_balance")
      snap.Checks.statuses
  in
  (* empty system: all sizes zero -> gini 0 by convention *)
  checkb "empty load -> gini 0" true
    (List.assoc "items_gini" lb.Checks.gauges = 0.0)

(* --- scenario integration --- *)

let scenario_system ~seed =
  H.create_star ~seed ~peers:400 ()

let test_scenario_clean_audit () =
  let h = scenario_system ~seed:3 in
  let report =
    Scenario.run ~audit_interval:100.0 h ~seed:3
      ~script:
        [
          Scenario.Join_many (30, 0.6); Scenario.Insert_items 80; Scenario.Settle;
          Scenario.Lookup_items 60; Scenario.Leave_random; Scenario.Settle;
        ]
  in
  checkb "invariants ok" true (Result.is_ok report.Scenario.invariants);
  match report.Scenario.audit with
  | None -> Alcotest.fail "audit summary missing"
  | Some a ->
    checkb "audited repeatedly" true (a.Scenario.audit_ticks > 1);
    checki "clean scenario, zero violations" 0 a.Scenario.audit_violations;
    checki "timeline row per tick" a.Scenario.audit_ticks
      (List.length a.Scenario.timeline)

let test_scenario_violations_over_time () =
  let h = scenario_system ~seed:5 in
  let report =
    Scenario.run ~audit_interval:50.0 h ~seed:5
      ~script:
        [
          Scenario.Join_many (30, 0.5); Scenario.Insert_items 60; Scenario.Settle;
          Scenario.Crash_fraction 0.3;
          (* audited time passes while the damage is still unrepaired *)
          Scenario.Advance 300.0;
          Scenario.Repair; Scenario.Settle;
        ]
  in
  (match report.Scenario.audit with
   | None -> Alcotest.fail "audit summary missing"
   | Some a ->
     checkb "mid-run damage observed" true (a.Scenario.audit_violations > 0);
     checkb "damage window in timeline" true
       (List.exists (fun (_, v) -> v > 0) a.Scenario.timeline);
     (* the last tick ran after repair: timeline ends clean *)
     (match List.rev a.Scenario.timeline with
      | (_, last) :: _ -> checki "final tick clean" 0 last
      | [] -> Alcotest.fail "empty timeline"));
  checkb "final invariants ok after repair" true
    (Result.is_ok report.Scenario.invariants)

(* without an audit interval the report keeps its pre-audit shape *)
let test_scenario_audit_off () =
  let h = scenario_system ~seed:9 in
  let report =
    Scenario.run h ~seed:9
      ~script:[ Scenario.Join_many (15, 0.5); Scenario.Insert_items 20; Scenario.Settle ]
  in
  checkb "no audit summary" true (report.Scenario.audit = None);
  checkb "invariants ok" true (Result.is_ok report.Scenario.invariants)

(* The online checks and the strict offline checker agree on quiescent,
   repaired states. *)
let test_agreement_with_offline_checker () =
  let h, _ = star_system ~seed:19 ~n:45 ~ps:0.7 () in
  let _ = insert_items h ~count:80 in
  for _ = 1 to 5 do
    H.crash h (H.random_peer h)
  done;
  H.repair h;
  H.run h;
  ok_invariants h;
  no_violations (Checks.run_all (H.world h))

let suite =
  [
    Alcotest.test_case "catalogue: clean system" `Quick test_clean_system;
    Alcotest.test_case "catalogue: names/select" `Quick test_catalogue_names;
    Alcotest.test_case "auditor: clean under churn" `Quick test_online_clean_churn;
    Alcotest.test_case "auditor: degree corruption" `Quick test_degree_corruption_detected;
    Alcotest.test_case "checks: broken successor" `Quick test_broken_successor_detected;
    Alcotest.test_case "checks: misplaced item" `Quick test_misplaced_item_detected;
    Alcotest.test_case "checks: crash then repair" `Quick test_crash_damage_then_repair;
    Alcotest.test_case "gauges: load balance" `Quick test_load_balance_gauges;
    Alcotest.test_case "gauges: empty gini" `Quick test_gini;
    Alcotest.test_case "scenario: clean audited run" `Quick test_scenario_clean_audit;
    Alcotest.test_case "scenario: violations over time" `Quick
      test_scenario_violations_over_time;
    Alcotest.test_case "scenario: audit off" `Quick test_scenario_audit_off;
    Alcotest.test_case "offline/online agreement" `Quick
      test_agreement_with_offline_checker;
  ]
