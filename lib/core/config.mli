(** System configuration for the hybrid peer-to-peer system.

    Collects every tunable the paper defines: the degree constraint [δ] on
    s-network trees, the flood TTL, the data placement scheme (Section 3.4),
    the enhancement switches of Section 5, the failure-detection timer
    periods of Section 3.2.2, and the routing mode of the t-network. *)

(** Where an item routed through the t-network is finally stored
    (Section 3.4). *)
type placement =
  | Store_at_tpeer
      (** basic scheme: the owning t-peer keeps everything — imbalanced *)
  | Spread_to_neighbors
      (** improved scheme: random spreading walk over directly connected
          s-peers, balancing the load *)

(** How the s-network answers queries (Sections 3.1, 3.4 and 5.5). *)
type s_style =
  | Flooding_tree  (** Gnutella-style TTL flood over the tree *)
  | Random_walks of int
      (** that many independent random walks of TTL steps each — the
          paper's lower-bandwidth alternative to flooding *)
  | Bittorrent_tracker
      (** the t-peer indexes every item in its s-network and answers
          lookups directly; no flooding *)

(** Where the durability layer ({!module:P2p_replication}) places the
    [replication_factor] redundant copies of each item. *)
type replica_placement =
  | Ring_successors
      (** one copy with each of the next [r] live t-peers clockwise from
          the owner's segment — survives whole-s-network loss, the
          Chord-style successor-list discipline *)
  | Tree_neighbors
      (** copies on the primary holder's s-tree parent and children —
          cheapest placement (one underlay hop in the tree), but a
          crashed subtree can take every copy with it *)

type t = {
  delta : int;  (** degree constraint [δ] on s-network trees (>= 2) *)
  default_ttl : int;  (** flood TTL for s-network lookups *)
  placement : placement;
  s_style : s_style;
  use_fingers_for_join : bool;
      (** route t-peer join requests through finger tables (O(log N)); the
          paper's Fig. 3a analysis assumes this *)
  use_fingers_for_data : bool;
      (** route data operations through finger tables.  The paper's
          simulation forwards data "along the ring" (Table 2's connum at
          [p_s = 0] is ~N/2 per lookup), so this defaults to [false];
          enabling it is the [ablate-fingers] experiment *)
  hello_period : float;  (** ms between HELLO heartbeats *)
  hello_timeout : float;  (** ms of silence before a neighbour is presumed dead *)
  ack_timeout : float;  (** ms to wait for a query acknowledgment *)
  suppress_period : float;  (** minimum ms between acknowledgments sent *)
  lookup_timeout : float;  (** ms before a pending lookup is declared failed *)
  heartbeats : bool;
      (** drive HELLO/ack failure detection online.  Disable for
          quiescence-driven batch experiments and repair crashes with
          {!Hybrid.repair} instead *)
  bypass_enabled : bool;  (** maintain bypass links (Section 5.4) *)
  bypass_lifetime : float;  (** ms a bypass link survives without traffic *)
  link_usage_aware : bool;
      (** connect-point selection checks link usage (Section 5.1) *)
  link_usage_threshold : float;
      (** a connect point accepts a child while degree/capacity is below
          this *)
  transmission_ms : float;
      (** per-message transmission cost at unit link capacity; a message
          between two peers pays [transmission_ms / min(cap_src, cap_dst)].
          [0.] (the default) disables capacity effects; the link
          heterogeneity experiments (Section 5.1 / Fig. 6a) set it
          positive. *)
  reflood_attempts : int;
      (** on lookup timeout, reissue the query with doubled TTL (and a
          fresh timer) up to this many times (Section 3.4: "increase the
          TTL value and the expiration duration of the timer and reflood").
          [0] (default) fails on the first timeout. *)
  cache_capacity : int;
      (** per-peer soft cache of popular items (the paper's Section-7
          future work); [0] (default) disables caching *)
  cache_lifetime : float;  (** ms a cached copy stays valid *)
  bloom_bits_per_key : int;
      (** size budget of the attenuated Bloom summaries kept per s-tree
          edge, in filter bits per summarized key.  When positive,
          {!S_network.flood} prunes branches whose edge summary misses the
          looked-up key ({!Summaries}); [0] (default) disables the
          summaries and every flood visits the whole in-range tree. *)
  bloom_depth : int;
      (** number of attenuation levels per edge summary (>= 1): level [i]
          holds keys exactly [i+1] tree hops below the edge, and the last
          level absorbs everything deeper *)
  replication_factor : int;
      (** number of redundant copies of each item kept beyond the
          primary ([r]); [0] (default) reproduces the paper's
          no-durability behaviour where a crashed peer's items are lost.
          Takes effect once {!P2p_replication.Manager.install} hooks the
          subsystem into the world (the scenario runner and [p2psim] do
          this automatically when [r > 0]). *)
  replica_placement : replica_placement;
  anti_entropy_interval : float;
      (** ms between anti-entropy digest exchanges while the periodic
          timer is running (see {!P2p_replication.Manager.start}) *)
  successor_list_length : int;
      (** length of the successor list each t-peer maintains for ring
          repair (also the Chord baseline's list length; >= 1).
          Replication across [Ring_successors] is capped independently
          by [replication_factor]. *)
  engine_lanes : int;
      (** number of event lanes the simulation engine partitions its
          queue into (>= 1; default 1 = single queue).  Lanes map ring
          segments to independent event heaps; with [engine_lookahead =
          0.] the executed order is identical to a single queue for
          every lane count (see {!P2p_sim.Engine}). *)
  engine_lookahead : float;
      (** conservative-lookahead window in ms (>= 0; default 0 = exact
          merge).  Positive values let a lane run batched up to this far
          past the other lanes' heads; safe when at most the minimum
          cross-lane message latency. *)
  batch_sends : bool;
      (** batch the event-heap insertions of multi-recipient fan-outs
          (tree floods, replication pushes) into one restructuring pass
          via the transport's [batch] hook (default [true]).  Purely a
          speed knob: sequence numbers are stamped at send time, so the
          executed event schedule is bit-identical either way — [false]
          exists for A/B measurement ([bench hotpath]). *)
  trace_sample_rate : float;
      (** head-based operation-trace sampling probability in [0, 1]
          (default 0.01).  In live mode this must be identical on every
          process: each node re-derives the per-op decision from the op
          id, so a shared rate (and [trace_sample_seed]) is what makes
          the wire-propagated sampling bit agree with local decisions
          cluster-wide. *)
  trace_sample_seed : int;
      (** seed of the sampling hash; vary it to sample a different
          population of operations at the same rate *)
}

(** Paper-faithful defaults: [δ = 3] (the simulations' setting),
    [default_ttl = 4], spread placement, flooding s-networks, fingers for
    joins but ring-walk for data, heartbeats off, bypass off. *)
val default : t

(** [validate t] returns [Error reason] if a field is out of range
    (e.g. [delta < 2], negative timers). *)
val validate : t -> (unit, string) result
