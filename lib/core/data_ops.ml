open P2p_hashspace
module Rng = P2p_sim.Rng
module Engine = P2p_sim.Engine
module Transport = P2p_transport.Transport
module Trace = P2p_sim.Trace
module Metrics = P2p_net.Metrics

type lookup_outcome =
  | Found of { holder : Peer.t; latency : float; hops : int }
  | Timed_out

(* Does the s-network [peer] belongs to serve [d_id]? *)
let snet_covers peer d_id =
  match peer.Peer.t_home with
  | Some home -> Peer.covers home d_id
  | None -> false

(* A live bypass target sitting in the s-network that serves [d_id]. *)
let bypass_towards w peer d_id =
  if not w.World.config.Config.bypass_enabled then None
  else
    List.find_opt (fun b -> snet_covers b d_id) (Peer.live_bypass peer ~now:(World.now w))

let refresh_bypass w peer target =
  Peer.add_bypass w.World.config peer target ~now:(World.now w)

(* Bypass rules 2 and 3: link the two endpoints of a cross-s-network data
   operation, in both directions. *)
let link_if_cross_network w a b =
  if w.World.config.Config.bypass_enabled && a != b then begin
    match (a.Peer.t_home, b.Peer.t_home) with
    | Some ha, Some hb when ha != hb ->
      let now = World.now w in
      Peer.add_bypass w.World.config a b ~now;
      Peer.add_bypass w.World.config b a ~now
    | Some _, Some _ | None, _ | _, None -> ()
  end

(* Report a newly stored item to the s-network's tracker (BitTorrent-style
   mode, Section 5.5). *)
let tracker_report w ?op ~holder ~key () =
  if w.World.config.Config.s_style = Config.Bittorrent_tracker then
    match holder.Peer.t_home with
    | Some home when home != holder ->
      World.send_span w ?op ~tier:"s_network" ~phase:"tracker" ~src:holder
        ~dst:home (fun () ->
          if home.Peer.alive then Hashtbl.replace home.Peer.tracker_index key holder)
    | Some home -> Hashtbl.replace home.Peer.tracker_index key holder
    | None -> ()

let store_here w ?op peer ~route_id ~key ~value =
  Data_store.insert_routed peer.Peer.store ~route_id ~key ~value;
  (* a replica copy at the primary holder itself would be redundant *)
  Data_store.remove peer.Peer.replicas ~key;
  Summaries.note_stored w ~holder:peer ~key;
  tracker_report w ?op ~holder:peer ~key ();
  match w.World.on_stored with
  | Some fan_out -> fan_out ~op ~holder:peer ~route_id ~key ~value
  | None -> ()

(* Placement scheme B: the random spreading walk from the owning t-peer
   down its tree.  Choosing the peer itself ends the walk. *)
let rec spread_walk w ?op current ~route_id ~key ~value ~hops ~on_done =
  let candidates = Array.of_list (current :: current.Peer.children) in
  let chosen = Rng.pick w.World.rng candidates in
  if chosen == current then begin
    store_here w ?op current ~route_id ~key ~value;
    on_done ~holder:current ~hops
  end
  else
    World.send_span w ?op ~tier:"s_network" ~phase:"spread_walk" ~src:current
      ~dst:chosen (fun () ->
        spread_walk w ?op chosen ~route_id ~key ~value ~hops:(hops + 1) ~on_done)

(* The item has arrived in the s-network that serves it; place it there. *)
let place_in_snetwork w ?op entry ~route_id ~key ~value ~hops ~on_done =
  match w.World.config.Config.placement with
  | Config.Store_at_tpeer | Config.Spread_to_neighbors
    when not (Peer.is_t_peer entry) ->
    (* Entered through a bypass link or generated locally: data stays at
       the entry peer — it is already inside the right s-network. *)
    store_here w ?op entry ~route_id ~key ~value;
    on_done ~holder:entry ~hops
  | Config.Store_at_tpeer ->
    store_here w ?op entry ~route_id ~key ~value;
    on_done ~holder:entry ~hops
  | Config.Spread_to_neighbors ->
    spread_walk w ?op entry ~route_id ~key ~value ~hops ~on_done

let insert w ~from ~key ~value ?route_id () ~on_done =
  let d_id = match route_id with Some id -> id | None -> Key_hash.of_string key in
  let op = Trace.begin_op (World.trace w) ~time:(World.now w) ~kind:Trace.Insert key in
  World.bump w ~subsystem:"data_ops" ~name:"inserts";
  let on_done ~holder ~hops =
    link_if_cross_network w from holder;
    Trace.end_op (World.trace w) ~time:(World.now w) ~op
      (Printf.sprintf "stored at #%d after %d hops" holder.Peer.host hops);
    on_done ~holder ~hops
  in
  if snet_covers from d_id then
    place_in_snetwork w ~op from ~route_id:d_id ~key ~value ~hops:0 ~on_done
  else
    match bypass_towards w from d_id with
    | Some target ->
      refresh_bypass w from target;
      World.send_span w ~op ~tier:"t_network" ~phase:"bypass_hop" ~src:from
        ~dst:target (fun () ->
          place_in_snetwork w ~op target ~route_id:d_id ~key ~value ~hops:1 ~on_done)
    | None ->
      (match from.Peer.t_home with
       | None -> invalid_arg "Data_ops.insert: peer outside any s-network"
       | Some home ->
         let forward_from_home () =
           T_network.route_to_owner w ~op ~from:home ~d_id
             ~visit:(fun _ -> ())
             ~on_arrive:(fun ~owner ~hops ->
               place_in_snetwork w ~op owner ~route_id:d_id ~key ~value ~hops:(hops + 1)
                 ~on_done)
             ()
         in
         if home == from then forward_from_home ()
         else
           World.send_span w ~op ~tier:"t_network" ~phase:"home_hop" ~src:from
             ~dst:home forward_from_home)

(* --- Lookup --- *)

type ctx = {
  requester : Peer.t;
  key : string;
  op : int;  (* trace operation id minted at lookup initiation *)
  started : float;
  mutable finished : bool;
  mutable replied : bool;
  mutable timer : Transport.timer;
  on_result : lookup_outcome -> unit;
  w : World.t;
}

let finish_success ctx ~holder ~value ~hops =
  if not ctx.finished then begin
    ctx.finished <- true;
    Transport.cancel ctx.timer;
    let latency = World.now ctx.w -. ctx.started in
    Metrics.record_lookup_success ctx.w.World.metrics ~latency ~hops;
    Trace.end_op (World.trace ctx.w) ~time:(World.now ctx.w) ~op:ctx.op
      (Printf.sprintf "found at #%d, %d hops, %.2f ms" holder.Peer.host hops latency);
    link_if_cross_network ctx.w ctx.requester holder;
    (* the Section-7 caching scheme: the requester keeps a soft copy, so
       the next popular request is served locally *)
    let config = ctx.w.World.config in
    if config.Config.cache_capacity > 0 then begin
      Cache.put ctx.requester.Peer.cache ~now:(World.now ctx.w)
        ~lifetime:config.Config.cache_lifetime ~key:ctx.key ~value;
      World.bump ctx.w ~subsystem:"cache" ~name:"fills"
    end;
    ctx.on_result (Found { holder; latency; hops })
  end

(* Check one peer's database (and soft cache); reply to the requester on
   a hit.  Returns whether this peer keeps forwarding the flood. *)
let check_peer ctx peer ~hops =
  Metrics.record_contact ctx.w.World.metrics;
  let found =
    match Data_store.find peer.Peer.store ~key:ctx.key with
    | Some _ as hit -> hit
    | None -> (
      (* replica fallback: a redundant copy serves the read when the
         primary is gone (empty unless replication is on) *)
      match Data_store.find peer.Peer.replicas ~key:ctx.key with
      | Some _ as hit ->
        World.bump ctx.w ~subsystem:"replication" ~name:"replica_hits";
        World.mark_span ctx.w ~op:ctx.op ~tier:"replication" ~phase:"replica_hit"
          ~src:peer ctx.key;
        hit
      | None ->
        if ctx.w.World.config.Config.cache_capacity > 0 then begin
          let cached = Cache.find peer.Peer.cache ~now:(World.now ctx.w) ~key:ctx.key in
          World.bump ctx.w ~subsystem:"cache"
            ~name:(match cached with Some _ -> "hits" | None -> "misses");
          World.mark_span ctx.w ~op:ctx.op ~tier:"cache"
            ~phase:(match cached with Some _ -> "hit" | None -> "miss")
            ~src:peer ctx.key;
          cached
        end
        else None)
  in
  match found with
  | Some value when not ctx.replied ->
    ctx.replied <- true;
    World.send_span ctx.w ~op:ctx.op ~tier:"s_network" ~phase:"reply" ~src:peer
      ~dst:ctx.requester (fun () ->
        finish_success ctx ~holder:peer ~value ~hops:(hops + 1));
    false
  | Some _ -> false
  | None -> true

let flood_snetwork ctx ~entry ~base_hops ~ttl ~skip_entry_check =
  S_network.flood ctx.w ~op:ctx.op ~prune_key:ctx.key ~from:entry ~ttl
    ~visit:(fun peer ~depth ->
      if depth = 0 && skip_entry_check then true
      else check_peer ctx peer ~hops:(base_hops + depth))
    ()

(* BitTorrent-style resolution at the tracker t-peer. *)
let tracker_resolve ctx ~tracker ~base_hops =
  Metrics.record_contact ctx.w.World.metrics;
  match Hashtbl.find_opt tracker.Peer.tracker_index ctx.key with
  | Some holder when holder.Peer.alive ->
    World.send_span ctx.w ~op:ctx.op ~tier:"s_network" ~phase:"tracker"
      ~src:tracker ~dst:holder (fun () ->
        if holder.Peer.alive then
          ignore (check_peer ctx holder ~hops:(base_hops + 1) : bool)
        else Hashtbl.remove tracker.Peer.tracker_index ctx.key)
  | Some _ | None ->
    (* Unknown key or dead holder: check the tracker's own store as a last
       resort (it may hold scheme-A data). *)
    ignore (check_peer ctx tracker ~hops:base_hops : bool)

(* Random-walk resolution: [walkers] independent walks over tree edges,
   each of at most [ttl] steps; a walker stops when its current peer holds
   the item. *)
let random_walk_snetwork ctx ~entry ~base_hops ~ttl ~walkers ~skip_entry_check =
  let continue_from_entry =
    if skip_entry_check then true else check_peer ctx entry ~hops:base_hops
  in
  if continue_from_entry then
    for _ = 1 to walkers do
      let rec step current depth =
        if depth < ttl && not ctx.finished then begin
          let candidates =
            List.filter (fun q -> q.Peer.alive) (Peer.tree_neighbors current)
          in
          match candidates with
          | [] -> ()
          | _ ->
            let next = Rng.pick_list ctx.w.World.rng candidates in
            World.send_span ctx.w ~op:ctx.op ~tier:"s_network" ~phase:"walk"
              ~src:current ~dst:next (fun () ->
                if next.Peer.alive then
                  if check_peer ctx next ~hops:(base_hops + depth + 1) then
                    step next (depth + 1))
        end
      in
      step entry 0
    done

(* Read-path fallback probe: in [Ring_successors] mode the redundant
   copies live with the next [r] t-peers clockwise from the owner, which
   neither the tree flood nor the ring route (it approaches the owner
   from the predecessor side) ever visits.  Walk the successor chain in
   parallel with the in-network resolution; the [ctx.replied] guard
   makes duplicate hits harmless.  [Tree_neighbors] copies sit inside
   the flooded tree, so the normal visit already reaches them. *)
let probe_ring_replicas ctx ~entry ~base_hops =
  let config = ctx.w.World.config in
  if
    config.Config.replication_factor > 0
    && config.Config.replica_placement = Config.Ring_successors
  then
    match entry.Peer.t_home with
    | None -> ()
    | Some home ->
      let rec hop prev k hops =
        if k < config.Config.replication_factor then
          match prev.Peer.succ with
          | Some next when next != home && next.Peer.alive ->
            World.send_span ctx.w ~op:ctx.op ~tier:"replication"
              ~phase:"replica_probe" ~src:prev ~dst:next (fun () ->
                if next.Peer.alive then begin
                  ignore (check_peer ctx next ~hops : bool);
                  hop next (k + 1) (hops + 1)
                end)
          | Some _ | None -> ()
      in
      hop home 0 (base_hops + 1)

let resolve_in_snetwork ctx ~entry ~base_hops ~ttl ~skip_entry_check =
  probe_ring_replicas ctx ~entry ~base_hops;
  match ctx.w.World.config.Config.s_style with
  | Config.Flooding_tree -> flood_snetwork ctx ~entry ~base_hops ~ttl ~skip_entry_check
  | Config.Random_walks walkers ->
    random_walk_snetwork ctx ~entry ~base_hops ~ttl ~walkers ~skip_entry_check
  | Config.Bittorrent_tracker ->
    let tracker = Option.value entry.Peer.t_home ~default:entry in
    if tracker == entry then tracker_resolve ctx ~tracker ~base_hops
    else
      World.send_span ctx.w ~op:ctx.op ~tier:"s_network" ~phase:"tracker"
        ~src:entry ~dst:tracker (fun () ->
          if tracker.Peer.alive then tracker_resolve ctx ~tracker ~base_hops:(base_hops + 1))

let lookup w ~from ~key ?ttl ?route_id () ~on_result =
  let initial_ttl = Option.value ttl ~default:w.World.config.Config.default_ttl in
  let d_id = match route_id with Some id -> id | None -> Key_hash.of_string key in
  Metrics.record_lookup_issued w.World.metrics;
  let op = Trace.begin_op (World.trace w) ~time:(World.now w) ~kind:Trace.Lookup key in
  let expire_hook = ref (fun () -> ()) in
  let make_timer () =
    World.one_shot w ~delay:w.World.config.Config.lookup_timeout (fun () ->
        !expire_hook ())
  in
  let ctx =
    {
      requester = from;
      key;
      op;
      started = World.now w;
      finished = false;
      replied = false;
      timer = make_timer ();
      on_result;
      w;
    }
  in
  let rec start ~ttl =
    if snet_covers from d_id then
      resolve_in_snetwork ctx ~entry:from ~base_hops:0 ~ttl ~skip_entry_check:false
    else if not (check_peer ctx from ~hops:(-1)) then
      (* the requester itself held the item (typically a cached copy of
         popular data — the Section-7 scheme); the reply is already on its
         way *)
      ()
    else
      match bypass_towards w from d_id with
      | Some target ->
        refresh_bypass w from target;
        World.send_span w ~op ~tier:"t_network" ~phase:"bypass_hop" ~src:from
          ~dst:target (fun () ->
            if target.Peer.alive then
              resolve_in_snetwork ctx ~entry:target ~base_hops:1 ~ttl
                ~skip_entry_check:false)
      | None ->
        (match from.Peer.t_home with
         | None -> invalid_arg "Data_ops.lookup: peer outside any s-network"
         | Some home ->
           let route_from_home ~base_hops =
             T_network.route_to_owner w ~op ~from:home ~d_id
               ~visit:(fun tpeer ->
                 (* every t-peer on the ring path checks its database *)
                 if tpeer.Peer.alive then
                   ignore (check_peer ctx tpeer ~hops:base_hops : bool))
               ~on_arrive:(fun ~owner ~hops ->
                 resolve_in_snetwork ctx ~entry:owner ~base_hops:(base_hops + hops) ~ttl
                   ~skip_entry_check:true)
               ()
           in
           if home == from then route_from_home ~base_hops:0
           else
             World.send_span w ~op ~tier:"t_network" ~phase:"home_hop" ~src:from
               ~dst:home (fun () ->
                 if home.Peer.alive then route_from_home ~base_hops:1))
  and attempt ~ttl ~attempts_left =
    expire_hook :=
      (fun () ->
        if not ctx.finished then begin
          if attempts_left > 0 then begin
            (* Section 3.4: increase the TTL, rearm the timer, reflood. *)
            ctx.replied <- false;
            ctx.timer <- make_timer ();
            attempt ~ttl:(2 * Stdlib.max 1 ttl) ~attempts_left:(attempts_left - 1)
          end
          else begin
            ctx.finished <- true;
            Metrics.record_lookup_failure w.World.metrics;
            Trace.end_op (World.trace w) ~time:(World.now w) ~op "timed out";
            on_result Timed_out
          end
        end);
    start ~ttl
  in
  attempt ~ttl:initial_ttl ~attempts_left:w.World.config.Config.reflood_attempts

(* --- Partial / keyword search (Section 5.3) --- *)

type keyword_match = { match_key : string; match_holder : Peer.t }

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  end

let keyword_lookup w ~from ~substring ~route_id ?ttl ~window () ~on_result =
  if window <= 0.0 then invalid_arg "Data_ops.keyword_lookup: window";
  let ttl = Option.value ttl ~default:w.World.config.Config.default_ttl in
  let op =
    Trace.begin_op (World.trace w) ~time:(World.now w) ~kind:Trace.Keyword substring
  in
  World.bump w ~subsystem:"data_ops" ~name:"keyword_lookups";
  let matches = ref [] in
  let closed = ref false in
  ignore
    (World.one_shot w ~delay:window (fun () ->
         closed := true;
         Trace.end_op (World.trace w) ~time:(World.now w) ~op
           (Printf.sprintf "%d matches" (List.length !matches));
         on_result (List.rev !matches))
      : Transport.timer);
  let scan_peer peer =
    Metrics.record_contact w.World.metrics;
    Data_store.iter peer.Peer.store (fun ~key ~value:_ ~route_id:_ ->
        if contains_substring ~needle:substring key then
          World.send_span w ~op ~tier:"s_network" ~phase:"reply" ~src:peer
            ~dst:from (fun () ->
              if not !closed then
                matches := { match_key = key; match_holder = peer } :: !matches));
    true (* partial search keeps flooding: it wants every match *)
  in
  let flood_from entry =
    S_network.flood w ~op ~from:entry ~ttl
      ~visit:(fun peer ~depth:_ -> scan_peer peer)
      ()
  in
  if snet_covers from route_id then flood_from from
  else
    match from.Peer.t_home with
    | None -> invalid_arg "Data_ops.keyword_lookup: peer outside any s-network"
    | Some home ->
      World.send_span w ~op ~tier:"t_network" ~phase:"home_hop" ~src:from
        ~dst:home (fun () ->
          if home.Peer.alive then
            T_network.route_to_owner w ~op ~from:home ~d_id:route_id
              ~visit:(fun _ -> ())
              ~on_arrive:(fun ~owner ~hops:_ -> flood_from owner)
              ())
