(** Streaming summary statistics (count, mean, variance, extrema) and
    percentile computation over collected samples.

    Means use Welford's online algorithm so that accumulating millions of
    latency samples stays numerically stable. *)

type t

val create : unit -> t

(** [add t x] folds sample [x] into the summary and records it for
    percentile queries. *)
val add : t -> float -> unit

(** [add_all t xs] adds every element of [xs]. *)
val add_all : t -> float list -> unit

(** [clear t] discards every sample in place: the summary is empty again
    but keeps its identity (and its sample buffer), so handles held by
    metric registries stay valid across a reset. *)
val clear : t -> unit

val count : t -> int

(** Mean of the samples; [0.] when empty. *)
val mean : t -> float

(** Unbiased sample variance; [0.] for fewer than two samples. *)
val variance : t -> float

(** Sample standard deviation. *)
val stddev : t -> float

(** Minimum sample.  @raise Invalid_argument when empty. *)
val min : t -> float

(** Maximum sample.  @raise Invalid_argument when empty. *)
val max : t -> float

(** Sum of all samples. *)
val total : t -> float

(** [percentile t p] for [p] in [\[0, 100\]], by nearest-rank on the sorted
    samples.  @raise Invalid_argument when empty or [p] out of range. *)
val percentile : t -> float -> float

(** Median, i.e. [percentile t 50.]. *)
val median : t -> float

(** Half-width of the 95% confidence interval of the mean under a normal
    approximation ([1.96 * stddev / sqrt count]); [0.] for fewer than two
    samples. *)
val ci95 : t -> float

(** All samples in insertion order (a copy). *)
val samples : t -> float array

val pp : Format.formatter -> t -> unit
