lib/topology/transit_stub.ml: Array Graph List P2p_sim
