(* Tests for the paper's extension features: the Section-7 caching scheme,
   reflooding with increased TTL, random-walk s-network lookups,
   interest-category routing, keyword/partial search, and the
   capacity-dependent transmission delay used by the heterogeneity
   experiments. *)

open Helpers
module Cache = Hybrid_p2p.Cache
module Interest = Hybrid_p2p.Interest
module Metrics = P2p_net.Metrics
module Data_store = Hybrid_p2p.Data_store
module Rng = P2p_sim.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Cache unit tests --- *)

let test_cache_basic () =
  let c = Cache.create ~capacity:2 in
  checki "empty" 0 (Cache.size c);
  Cache.put c ~now:0.0 ~lifetime:10.0 ~key:"a" ~value:"1";
  Alcotest.check (Alcotest.option Alcotest.string) "hit" (Some "1")
    (Cache.find c ~now:5.0 ~key:"a");
  Alcotest.check (Alcotest.option Alcotest.string) "expired" None
    (Cache.find c ~now:11.0 ~key:"a");
  checki "expired entry dropped" 0 (Cache.size c);
  checki "one hit" 1 (Cache.hits c);
  checki "one miss" 1 (Cache.misses c)

let test_cache_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.put c ~now:0.0 ~lifetime:10.0 ~key:"a" ~value:"1";
  Cache.put c ~now:0.0 ~lifetime:20.0 ~key:"b" ~value:"2";
  Cache.put c ~now:0.0 ~lifetime:30.0 ~key:"c" ~value:"3";
  checki "capacity respected" 2 (Cache.size c);
  Alcotest.check (Alcotest.option Alcotest.string) "soonest evicted" None
    (Cache.find c ~now:1.0 ~key:"a");
  Alcotest.check (Alcotest.option Alcotest.string) "latest kept" (Some "3")
    (Cache.find c ~now:1.0 ~key:"c")

let test_cache_refresh_no_evict () =
  let c = Cache.create ~capacity:2 in
  Cache.put c ~now:0.0 ~lifetime:10.0 ~key:"a" ~value:"1";
  Cache.put c ~now:0.0 ~lifetime:10.0 ~key:"b" ~value:"2";
  (* refreshing an existing key must not evict anything *)
  Cache.put c ~now:5.0 ~lifetime:10.0 ~key:"a" ~value:"1'";
  checki "still two" 2 (Cache.size c);
  Alcotest.check (Alcotest.option Alcotest.string) "refreshed" (Some "1'")
    (Cache.find c ~now:12.0 ~key:"a")

let test_cache_zero_capacity () =
  let c = Cache.create ~capacity:0 in
  Cache.put c ~now:0.0 ~lifetime:10.0 ~key:"a" ~value:"1";
  checki "disabled cache stores nothing" 0 (Cache.size c);
  Alcotest.check_raises "negative capacity" (Invalid_argument "Cache.create: negative capacity")
    (fun () -> ignore (Cache.create ~capacity:(-1) : Cache.t))

(* --- Caching inside the system --- *)

let test_lookup_fills_requester_cache () =
  let config = { default_config with Config.cache_capacity = 8 } in
  let h, _ = star_system ~config ~seed:60 ~n:80 ~ps:0.7 () in
  ignore (insert_items h ~count:50 : string list);
  let p = H.random_peer h in
  let r = lookup_sync h ~from:p ~key:"item-00007" () in
  checkb "found" true (found r);
  checkb "requester cached a copy" true
    (Cache.find p.Peer.cache ~now:(H.now h) ~key:"item-00007" <> None)

let test_cache_serves_repeat_lookups () =
  let config =
    { default_config with Config.cache_capacity = 8; cache_lifetime = 1e9 }
  in
  let h, _ = star_system ~config ~seed:61 ~n:80 ~ps:0.7 () in
  ignore (insert_items h ~count:50 : string list);
  let p = H.random_peer h in
  ignore (lookup_sync h ~from:p ~key:"item-00003" () : Data_ops.lookup_outcome);
  (* second lookup of the same key must be answered by p's own cache *)
  match lookup_sync h ~from:p ~key:"item-00003" () with
  | Data_ops.Found { holder; hops; _ } ->
    checkb "served locally" true (holder == p);
    checkb "instant" true (hops <= 1)
  | Data_ops.Timed_out -> Alcotest.fail "repeat lookup failed"

let test_cache_copies_expire () =
  let config =
    { default_config with Config.cache_capacity = 8; cache_lifetime = 10.0 }
  in
  let h, _ = star_system ~config ~seed:62 ~n:60 ~ps:0.6 () in
  ignore (insert_items h ~count:20 : string list);
  let p = H.random_peer h in
  ignore (lookup_sync h ~from:p ~key:"item-00001" () : Data_ops.lookup_outcome);
  H.run_for h 50.0;
  checkb "stale copy gone" true
    (Cache.find p.Peer.cache ~now:(H.now h) ~key:"item-00001" = None)

(* --- Reflooding --- *)

let deep_setup ~reflood_attempts ~seed =
  (* a deep item that a TTL-1 flood from the t-peer cannot reach *)
  let config =
    { default_config with
      Config.placement = Config.Store_at_tpeer;
      reflood_attempts;
      lookup_timeout = 2_000.0;
    }
  in
  let h, _ = star_system ~config ~seed ~n:80 ~ps:0.9 () in
  let w = H.world h in
  let owner =
    Option.get (World.oracle_owner w (P2p_hashspace.Key_hash.of_string "deep-item"))
  in
  let deep =
    List.fold_left
      (fun best p -> if Peer.depth p > Peer.depth best then p else best)
      owner (Peer.tree_members owner)
  in
  Data_store.insert deep.Peer.store ~key:"deep-item" ~value:"v";
  let other =
    List.find (fun p -> Option.get p.Peer.t_home != owner) (H.peers h)
  in
  (h, deep, other)

let test_reflood_rescues_deep_item () =
  let h, deep, other = deep_setup ~reflood_attempts:3 ~seed:63 in
  checkb "item is deep" true (Peer.depth deep >= 2);
  let r = lookup_sync h ~from:other ~key:"deep-item" ~ttl:1 () in
  checkb "reflood finds what ttl 1 missed" true (found r)

let test_no_reflood_fails () =
  let h, deep, other = deep_setup ~reflood_attempts:0 ~seed:63 in
  checkb "item is deep" true (Peer.depth deep >= 2);
  let r = lookup_sync h ~from:other ~key:"deep-item" ~ttl:1 () in
  checkb "single attempt misses" false (found r)

let test_reflood_counts_one_failure () =
  let config =
    { default_config with Config.reflood_attempts = 2; lookup_timeout = 1_000.0 }
  in
  let h, _ = star_system ~config ~seed:64 ~n:40 ~ps:0.5 () in
  let r = lookup_sync h ~from:(H.random_peer h) ~key:"never-inserted" () in
  checkb "finally times out" false (found r);
  checki "one issued" 1 (Metrics.lookups_issued (H.metrics h));
  checki "one failure despite three attempts" 1 (Metrics.lookups_failed (H.metrics h))

(* --- Random-walk s-networks --- *)

let test_random_walks_find_items () =
  let config = { default_config with Config.s_style = Config.Random_walks 8 } in
  let h, _ = star_system ~config ~seed:65 ~n:100 ~ps:0.7 () in
  let keys = insert_items h ~count:100 in
  let found_count = ref 0 in
  List.iter
    (fun key ->
      if found (lookup_sync h ~from:(H.random_peer h) ~key ~ttl:12 ()) then
        incr found_count)
    keys;
  checkb
    (Printf.sprintf "walkers find most items (%d/100)" !found_count)
    true (!found_count > 70)

let test_random_walks_cheaper_than_flood () =
  let connum_for s_style =
    let config = { default_config with Config.s_style } in
    let h, _ = star_system ~config ~seed:66 ~n:120 ~ps:0.9 () in
    ignore (insert_items h ~count:100 : string list);
    let before = Metrics.connum (H.metrics h) in
    for i = 0 to 49 do
      ignore
        (lookup_sync h ~from:(H.random_peer h)
           ~key:(Printf.sprintf "item-%05d" i) ~ttl:6 ()
          : Data_ops.lookup_outcome)
    done;
    Metrics.connum (H.metrics h) - before
  in
  let flood = connum_for Config.Flooding_tree in
  let walks = connum_for (Config.Random_walks 2) in
  checkb
    (Printf.sprintf "2 walkers (%d contacts) cheaper than flood (%d)" walks flood)
    true (walks < flood)

let test_random_walks_config_validated () =
  let config = { default_config with Config.s_style = Config.Random_walks 0 } in
  checkb "zero walkers rejected" true (Result.is_error (Config.validate config))

(* --- Interest routing --- *)

let test_interest_route_id_deterministic () =
  checki "same category same id" (Interest.route_id 3) (Interest.route_id 3);
  checkb "categories differ" true (Interest.route_id 0 <> Interest.route_id 1)

let test_interest_items_stay_local () =
  let h =
    H.create_star ~seed:67 ~peers:100 ~snet_policy:Hybrid_p2p.World.By_interest ()
  in
  (* category homes pinned at their routing IDs *)
  for host = 0 to 1 do
    ignore
      (H.join h ~host ~role:Peer.T_peer ~p_id:(Interest.route_id host) () : Peer.t);
    H.run h
  done;
  let members =
    List.init 20 (fun i ->
        let p = H.join h ~host:(2 + i) ~role:Peer.S_peer ~interest:(i mod 2) () in
        H.run h;
        p)
  in
  (* publish from a category-0 peer with the category route *)
  let publisher = List.find (fun p -> p.Peer.interest = Some 0) members in
  let holder = ref None in
  H.insert h ~from:publisher ~key:"cat0-file" ~value:"v"
    ~route_id:(Interest.route_id 0)
    ~on_done:(fun ~holder:hl ~hops:_ -> holder := Some hl)
    ();
  H.run h;
  (match !holder with
   | Some holder ->
     checkb "item stays in category-0's s-network" true
       (Option.get holder.Peer.t_home == Option.get publisher.Peer.t_home)
   | None -> Alcotest.fail "insert never completed");
  (* a category-0 requester finds it without leaving its s-network *)
  let requester =
    List.find (fun p -> p.Peer.interest = Some 0 && p != publisher) members
  in
  let before = Metrics.connum (H.metrics h) in
  let r = ref None in
  H.lookup h ~from:requester ~key:"cat0-file" ~route_id:(Interest.route_id 0) ~ttl:12
    ~on_result:(fun x -> r := Some x) ();
  H.run h;
  checkb "found" true (match !r with Some (Data_ops.Found _) -> true | _ -> false);
  let contacts = Metrics.connum (H.metrics h) - before in
  checkb
    (Printf.sprintf "contacts (%d) bounded by the category s-network" contacts)
    true (contacts <= 15)

(* --- Keyword search --- *)

let test_keyword_search_finds_matches () =
  let h =
    H.create_star ~seed:68 ~peers:100 ~snet_policy:Hybrid_p2p.World.By_interest ()
  in
  ignore (H.join h ~host:0 ~role:Peer.T_peer ~p_id:(Interest.route_id 0) () : Peer.t);
  H.run h;
  let members =
    List.init 15 (fun i ->
        let p = H.join h ~host:(1 + i) ~role:Peer.S_peer ~interest:0 () in
        H.run h;
        p)
  in
  let rng = Rng.create 1 in
  List.iteri
    (fun i title ->
      let publisher = Rng.pick_list rng members in
      ignore i;
      H.insert h ~from:publisher ~key:title ~value:"v"
        ~route_id:(Interest.route_id 0) ())
    [ "beatles-yesterday.mp3"; "beatles-help.mp3"; "stones-angie.mp3";
      "beatles-let-it-be.mp3"; "dylan-hurricane.mp3" ];
  H.run h;
  let results = ref None in
  H.keyword_search h ~from:(List.hd members) ~substring:"beatles"
    ~route_id:(Interest.route_id 0) ~ttl:12
    ~on_result:(fun ms -> results := Some ms)
    ();
  H.run h;
  match !results with
  | None -> Alcotest.fail "keyword search never reported"
  | Some ms ->
    let keys =
      List.sort_uniq compare (List.map (fun m -> m.Data_ops.match_key) ms)
    in
    checki "all three beatles tracks" 3 (List.length keys);
    checkb "no false positives" true
      (List.for_all
         (fun k ->
           List.mem k
             [ "beatles-yesterday.mp3"; "beatles-help.mp3"; "beatles-let-it-be.mp3" ])
         keys)

let test_keyword_search_empty_result () =
  let h, _ = star_system ~seed:69 ~n:40 ~ps:0.7 () in
  ignore (insert_items h ~count:20 : string list);
  let results = ref None in
  H.keyword_search h ~from:(H.random_peer h) ~substring:"no-such-token"
    ~route_id:(P2p_hashspace.Key_hash.of_string "anything")
    ~on_result:(fun ms -> results := Some ms)
    ();
  H.run h;
  checkb "reports empty list" true (!results = Some [])

(* --- Transmission delay --- *)

let test_transmission_delay_slows_slow_links () =
  let module Graph = P2p_topology.Graph in
  let module Routing = P2p_topology.Routing in
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 ~latency:1.0;
  Graph.add_edge g 1 2 ~latency:1.0;
  let config = { default_config with Config.transmission_ms = 10.0 } in
  let h =
    Hybrid_p2p.Hybrid.create ~seed:70 ~routing:(Routing.create g) ~config
      ~processing_delay:0.0 ()
  in
  ignore (H.join h ~host:0 ~role:Peer.T_peer ~link_capacity:10.0 () : Peer.t);
  H.run h;
  ignore (H.join h ~host:1 ~role:Peer.S_peer ~link_capacity:1.0 () : Peer.t);
  H.run h;
  let u = (Hybrid_p2p.Hybrid.world h).Hybrid_p2p.World.underlay in
  (* fast-fast pair: 10/10 = 1ms extra; fast-slow: 10/1 = 10ms extra *)
  checkf "fast-slow penalized" 11.0 (P2p_net.Underlay.delay u ~src:0 ~dst:1);
  ignore (H.join h ~host:2 ~role:Peer.S_peer ~link_capacity:10.0 () : Peer.t);
  H.run h;
  checkf "fast-fast cheap" 3.0 (P2p_net.Underlay.delay u ~src:0 ~dst:2)

let suite =
  [
    Alcotest.test_case "cache: basics" `Quick test_cache_basic;
    Alcotest.test_case "cache: eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache: refresh without evict" `Quick test_cache_refresh_no_evict;
    Alcotest.test_case "cache: zero capacity" `Quick test_cache_zero_capacity;
    Alcotest.test_case "cache: lookup fills requester cache" `Quick
      test_lookup_fills_requester_cache;
    Alcotest.test_case "cache: repeat lookups served locally" `Quick
      test_cache_serves_repeat_lookups;
    Alcotest.test_case "cache: copies expire" `Quick test_cache_copies_expire;
    Alcotest.test_case "reflood: rescues deep items" `Quick test_reflood_rescues_deep_item;
    Alcotest.test_case "reflood: off means miss" `Quick test_no_reflood_fails;
    Alcotest.test_case "reflood: one failure recorded" `Quick test_reflood_counts_one_failure;
    Alcotest.test_case "random walks: find items" `Quick test_random_walks_find_items;
    Alcotest.test_case "random walks: cheaper than flood" `Quick
      test_random_walks_cheaper_than_flood;
    Alcotest.test_case "random walks: config validated" `Quick
      test_random_walks_config_validated;
    Alcotest.test_case "interest: route id" `Quick test_interest_route_id_deterministic;
    Alcotest.test_case "interest: items stay local" `Quick test_interest_items_stay_local;
    Alcotest.test_case "keyword search: matches" `Quick test_keyword_search_finds_matches;
    Alcotest.test_case "keyword search: empty" `Quick test_keyword_search_empty_result;
    Alcotest.test_case "transmission delay by capacity" `Quick
      test_transmission_delay_slows_slow_links;
  ]
