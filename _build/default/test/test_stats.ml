(* Tests for P2p_stats: Summary, Histogram, Pdf. *)

module Summary = P2p_stats.Summary
module Histogram = P2p_stats.Histogram
module Pdf = P2p_stats.Pdf

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkf3 = Alcotest.check (Alcotest.float 1e-3)

let test_summary_empty () =
  let s = Summary.create () in
  checki "count" 0 (Summary.count s);
  checkf "mean" 0.0 (Summary.mean s);
  checkf "variance" 0.0 (Summary.variance s);
  checkf "ci95" 0.0 (Summary.ci95 s);
  Alcotest.check_raises "min empty" (Invalid_argument "Summary.min: empty") (fun () ->
      ignore (Summary.min s : float))

let test_summary_basic () =
  let s = Summary.create () in
  Summary.add_all s [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  checki "count" 5 (Summary.count s);
  checkf "mean" 3.0 (Summary.mean s);
  checkf "min" 1.0 (Summary.min s);
  checkf "max" 5.0 (Summary.max s);
  checkf "total" 15.0 (Summary.total s);
  checkf "variance" 2.5 (Summary.variance s);
  checkf3 "stddev" (sqrt 2.5) (Summary.stddev s)

let test_summary_single () =
  let s = Summary.create () in
  Summary.add s 7.0;
  checkf "mean" 7.0 (Summary.mean s);
  checkf "variance of one sample" 0.0 (Summary.variance s);
  checkf "median" 7.0 (Summary.median s)

let test_summary_percentiles () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add s (float_of_int i)
  done;
  checkf "p50" 50.0 (Summary.percentile s 50.0);
  checkf "p95" 95.0 (Summary.percentile s 95.0);
  checkf "p100" 100.0 (Summary.percentile s 100.0);
  checkf "p0 clamps to first" 1.0 (Summary.percentile s 0.0);
  Alcotest.check_raises "out of range" (Invalid_argument "Summary.percentile: out of range")
    (fun () -> ignore (Summary.percentile s 101.0 : float))

let test_summary_percentile_after_add () =
  (* the sorted cache must invalidate on add *)
  let s = Summary.create () in
  Summary.add_all s [ 10.0; 20.0 ];
  checkf "median before" 10.0 (Summary.median s);
  Summary.add s 1.0;
  checkf "median after new min" 10.0 (Summary.median s);
  Summary.add s 0.5;
  checkf "p25 reflects new data" 1.0 (Summary.percentile s 50.0)

let test_summary_welford_stability () =
  let s = Summary.create () in
  (* large offset exercises numerical stability *)
  let offset = 1e9 in
  List.iter (fun v -> Summary.add s (offset +. v)) [ 1.0; 2.0; 3.0 ];
  checkf3 "variance independent of offset" 1.0 (Summary.variance s)

let test_summary_samples_order () =
  let s = Summary.create () in
  Summary.add_all s [ 3.0; 1.0; 2.0 ];
  Alcotest.check (Alcotest.array (Alcotest.float 0.0)) "insertion order"
    [| 3.0; 1.0; 2.0 |] (Summary.samples s)

let test_histogram_basic () =
  let h = Histogram.create () in
  Histogram.observe h 3;
  Histogram.observe h 3;
  Histogram.observe h 0;
  checki "count 3" 2 (Histogram.count h 3);
  checki "count 0" 1 (Histogram.count h 0);
  checki "count absent" 0 (Histogram.count h 7);
  checki "total" 3 (Histogram.total h);
  checki "max_value" 3 (Histogram.max_value h);
  checkf3 "fraction" (2.0 /. 3.0) (Histogram.fraction h 3)

let test_histogram_empty () =
  let h = Histogram.create () in
  checki "total" 0 (Histogram.total h);
  checki "max_value" (-1) (Histogram.max_value h);
  checkf "fraction" 0.0 (Histogram.fraction h 0);
  checkb "to_assoc empty" true (Histogram.to_assoc h = [])

let test_histogram_negative () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.observe: negative value")
    (fun () -> Histogram.observe h (-1))

let test_histogram_observe_many () =
  let h = Histogram.create () in
  Histogram.observe_many h 5 10;
  checki "bulk count" 10 (Histogram.count h 5);
  Histogram.observe_many h 2 0;
  checki "zero count no-op" 0 (Histogram.count h 2);
  checki "max unchanged by zero-count" 5 (Histogram.max_value h)

let test_histogram_cdf () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0; 1; 1; 2; 5 ];
  checkf3 "cdf at 1" 0.6 (Histogram.fraction_at_most h 1);
  checkf3 "cdf at 4" 0.8 (Histogram.fraction_at_most h 4);
  checkf3 "cdf at max" 1.0 (Histogram.fraction_at_most h 5);
  checkf3 "cdf beyond" 1.0 (Histogram.fraction_at_most h 100)

let test_histogram_to_assoc () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 4; 2; 4; 9 ];
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted sparse pairs"
    [ (2, 1); (4, 2); (9, 1) ]
    (Histogram.to_assoc h)

let test_histogram_rebin () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0; 1; 9; 10; 11; 25 ];
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "width-10 buckets"
    [ (0, 3); (10, 2); (20, 1) ]
    (Histogram.rebin h ~width:10);
  Alcotest.check_raises "bad width" (Invalid_argument "Histogram.rebin: width must be positive")
    (fun () -> ignore (Histogram.rebin h ~width:0 : (int * int) list))

let test_histogram_mean () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 2; 4; 6 ];
  checkf3 "mean" 4.0 (Histogram.mean h)

let test_pdf_normalized () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0; 0; 5; 15 ];
  let pdf = Pdf.of_histogram h ~bin_width:10 in
  let total = List.fold_left (fun acc p -> acc +. p.Pdf.density) 0.0 pdf in
  checkf3 "densities sum to 1" 1.0 total;
  checkf3 "first bucket" 0.75 (List.hd pdf).Pdf.density

let test_pdf_headline_quantities () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0; 0; 3; 8; 80 ];
  checkf3 "fraction zero" 0.4 (Pdf.fraction_zero h);
  checkf3 "fraction below 10" 0.8 (Pdf.fraction_below h 10);
  checki "max load" 80 (Pdf.max_load h);
  checkf "fraction below 0" 0.0 (Pdf.fraction_below h 0)

let test_pdf_empty () =
  let h = Histogram.create () in
  checkb "empty pdf" true (Pdf.of_histogram h ~bin_width:10 = []);
  checki "max load 0" 0 (Pdf.max_load h)

let suite =
  [
    Alcotest.test_case "summary: empty" `Quick test_summary_empty;
    Alcotest.test_case "summary: basic moments" `Quick test_summary_basic;
    Alcotest.test_case "summary: single sample" `Quick test_summary_single;
    Alcotest.test_case "summary: percentiles" `Quick test_summary_percentiles;
    Alcotest.test_case "summary: cache invalidation" `Quick test_summary_percentile_after_add;
    Alcotest.test_case "summary: Welford stability" `Quick test_summary_welford_stability;
    Alcotest.test_case "summary: samples order" `Quick test_summary_samples_order;
    Alcotest.test_case "histogram: basic" `Quick test_histogram_basic;
    Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram: negative rejected" `Quick test_histogram_negative;
    Alcotest.test_case "histogram: observe_many" `Quick test_histogram_observe_many;
    Alcotest.test_case "histogram: cdf" `Quick test_histogram_cdf;
    Alcotest.test_case "histogram: to_assoc" `Quick test_histogram_to_assoc;
    Alcotest.test_case "histogram: rebin" `Quick test_histogram_rebin;
    Alcotest.test_case "histogram: mean" `Quick test_histogram_mean;
    Alcotest.test_case "pdf: normalized" `Quick test_pdf_normalized;
    Alcotest.test_case "pdf: headline quantities" `Quick test_pdf_headline_quantities;
    Alcotest.test_case "pdf: empty" `Quick test_pdf_empty;
  ]
