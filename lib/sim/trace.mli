(** Bounded in-memory event tracing with operation-scoped correlation.

    A trace is a ring buffer of timestamped, tagged events.  Subsystems
    record what they do ([message], [join], [lookup], ...); tests and
    debugging sessions inspect, filter, or dump the buffer.  Keeping the
    buffer bounded makes tracing safe to leave enabled in long experiments
    — old events fall off the back.

    Every top-level operation (an insert, a lookup, a join, ...) can mint
    an {e operation id} with {!begin_op}; each message, timer, and handler
    the operation causes records events carrying that id, so a single
    lookup can be replayed afterwards as an ordered per-hop event list
    ({!events_of_op}).

    Recording through a disabled trace is a no-op costing one branch, so
    library code can trace unconditionally. *)

type t

(** The operation classes the hybrid system distinguishes.  [Custom]
    covers ad-hoc experiment-defined operations. *)
type op_kind =
  | Insert
  | Lookup
  | T_join
  | S_join
  | Leave
  | Repair
  | Keyword
  | Replicate  (** replica fan-out / re-replication heal *)
  | Anti_entropy  (** periodic digest exchange between replica peers *)
  | Custom of string

(** Stable wire name of an operation kind (["insert"], ["t-join"], ...). *)
val op_kind_to_string : op_kind -> string

(** Inverse of {!op_kind_to_string}; unknown names map to [Custom]. *)
val op_kind_of_string : string -> op_kind

type event = {
  time : float;  (** simulated ms *)
  tag : string;  (** category, e.g. ["message"], ["join"], ["crash"] *)
  op : int option;  (** operation id the event belongs to, if any *)
  src : int option;  (** sending host for message events *)
  dst : int option;  (** receiving host for message events *)
  detail : string;
}

(** One node of an operation's causal span tree: a timed unit of work —
    a ring hop, a flood branch, a replica probe — attributed to a tier
    and phase.  Spans live in their own ring buffer sized like the event
    buffer; span id [k] occupies slot [k mod capacity], so a still-open
    span can be evicted by wraparound (counted by {!span_orphans}). *)
type span = {
  span_id : int;
  parent : int;  (** parent span id; [-1] marks an operation root *)
  span_op : int;  (** operation id the span belongs to *)
  tier : string;  (** e.g. ["t_network"], ["s_network"], ["replication"] *)
  phase : string;  (** e.g. ["ring_hop"], ["flood"], ["replica_probe"] *)
  span_src : int option;  (** sending host, for message-backed spans *)
  span_dst : int option;  (** receiving host, for message-backed spans *)
  span_start : float;  (** simulated ms *)
  mutable span_stop : float option;  (** [None] while still open *)
  span_label : string;
}

(** [create ~capacity ()] makes a trace keeping the last [capacity]
    events.

    [sample_rate] (default [1.0], full tracing) enables head-based op
    sampling: each operation minted by {!begin_op} is either {e sampled}
    — its events, root span, and child spans are recorded as usual — or
    {e unsampled} — its root span is never minted and every
    {!record}/{!begin_span}/{!mark_span} for it returns after a single
    integer compare ({!spans_unsampled} counts the skipped spans).  The
    decision is a pure hash of the op id on stream [sample_seed]
    ({!Rng.hash62}), so two runs with equal seeds sample the identical
    op set and a replay traces exactly the ops the original run traced.
    Exact accounting is unaffected: {!begin_op}/{!end_op} track 100% of
    ops and report each completion to the {!on_op_complete} listener, so
    latency percentiles and SLO gates never depend on the rate.

    [first_span_id] (default [0]) offsets the span-id sequence: a live
    process minting from [node * 2^40] gets span ids disjoint from every
    other process, so a span id carried across the wire as a remote
    parent can never alias a locally minted span.

    @raise Invalid_argument if [capacity <= 0], [sample_rate] is
    outside [\[0, 1\]], or [first_span_id < 0]. *)
val create :
  capacity:int ->
  ?sample_rate:float ->
  ?sample_seed:int ->
  ?first_span_id:int ->
  unit ->
  t

(** A trace that drops everything (the default wiring). *)
val disabled : t

(** [enabled t] — does recording do anything? *)
val enabled : t -> bool

(** [sampled t op] — is operation [op] in the sampled set?  Pure and
    deterministic; always [true] at rate [1.0]. *)
val sampled : t -> int -> bool

(** The configured sampling rate ([1.0] = trace everything). *)
val sample_rate : t -> float

(** What {!end_op} reports for every completed operation, sampled or
    not.  [comp_kind] is the op kind's wire name; the latency is
    [comp_stop -. comp_start] in simulated ms. *)
type op_completion = {
  comp_op : int;
  comp_kind : string;
  comp_start : float;
  comp_stop : float;
  comp_sampled : bool;  (** did the op carry a span tree? *)
}

(** [on_op_complete t f] installs [f] as an op-completion listener;
    subsequent calls chain (all listeners fire, installation order).
    This is the exact-latency path: it sees 100% of completions
    regardless of the sample rate.  No-op on a disabled trace. *)
val on_op_complete : t -> (op_completion -> unit) -> unit

(** Is at least one {!on_op_complete} listener installed?  Consumers that
    would otherwise derive per-op totals from retained root spans (a
    sampled, bounded set) use this to avoid double counting. *)
val has_op_listener : t -> bool

(** [record t ~time ~tag ?op ?src ?dst detail] appends an event (dropping
    the oldest if full).  [op] attributes the event to an operation minted
    with {!begin_op}; [src]/[dst] identify the hosts of a message event. *)
val record :
  t -> time:float -> tag:string -> ?op:int -> ?src:int -> ?dst:int -> string -> unit

(** [record_f t ~time ~tag fmt ...] — like {!record} with a format string;
    the message is not built when the trace is disabled. *)
val record_f :
  t ->
  time:float ->
  tag:string ->
  ?op:int ->
  ?src:int ->
  ?dst:int ->
  ('a, unit, string, unit) format4 ->
  'a

(** [begin_op t ~time ~kind detail] mints a fresh operation id and records
    a ["<kind>-start"] event carrying it.  Ids are consecutive from [0] in
    minting order, so a fixed seed yields identical ids run to run.  The id
    is minted (and unique) even when the trace is disabled.  On an enabled
    trace it also opens the operation's {e root span} (tier ["op"], phase
    the kind's wire name) when the op is sampled (see {!create});
    {!end_op} closes it.  Exact open-op accounting happens for every op
    regardless of sampling. *)
val begin_op : t -> time:float -> kind:op_kind -> string -> int

(** [begin_extern_op t ~time ~op ~kind detail] — {!begin_op} for an
    operation whose id was minted elsewhere (a client request id carried
    in a wire trace header).  Registers [op] for exact completion
    accounting, mints its root span when sampled (carrying [src]/[dst]
    so exporters can place it on a process track), and bumps the
    internal id counter past [op] so a later {!begin_op} cannot collide.
    Sampling is the same pure hash as {!begin_op}'s: processes sharing
    [sample_seed]/[sample_rate] agree on every op's decision. *)
val begin_extern_op :
  t ->
  time:float ->
  op:int ->
  kind:op_kind ->
  ?src:int ->
  ?dst:int ->
  string ->
  unit

(** [end_op t ~time ~op detail] records the terminal ["op-end"] event of
    operation [op] ([detail] conventionally carries the outcome) and closes
    the operation's root span.  Spans begun for [op] afterwards are
    suppressed (see {!begin_span}). *)
val end_op : t -> time:float -> op:int -> string -> unit

(** [begin_span t ~time ~op ~tier ~phase label] opens a span under
    operation [op] and returns its id.  [parent] defaults to the op's root
    span, so protocol code needs no parent threading.  Containment is kept
    by construction: if the chosen parent has already closed the span is
    {e suppressed} — nothing is recorded, [-1] is returned (safe to pass to
    {!end_span}), and {!spans_suppressed} counts it.  Always [-1] on a
    disabled trace. *)
val begin_span :
  t ->
  time:float ->
  op:int ->
  tier:string ->
  phase:string ->
  ?parent:int ->
  ?src:int ->
  ?dst:int ->
  string ->
  int

(** [end_span t ~time id] closes span [id].  The stop is clamped to the
    parent's stop when the parent closed first ({!spans_clamped}), so a
    child interval always lies inside its parent's.  Ending an id evicted
    by ring wraparound is a counted no-op under {!evicted_ends} (a
    capacity artifact); an id that was never minted counts under
    {!orphan_ends}; a double end, or [time] before the span's start,
    under {!span_mismatches}.  [id = -1] is a no-op. *)
val end_span : t -> time:float -> int -> unit

(** [mark_span t ~time ~op ~tier ~phase label] records a zero-duration
    span (an instant: a cache hit, a heal step). *)
val mark_span :
  t ->
  time:float ->
  op:int ->
  tier:string ->
  phase:string ->
  ?parent:int ->
  ?src:int ->
  ?dst:int ->
  string ->
  unit

(** [op_root_span t op] — the root span id of operation [op] while the
    operation is still open ([None] once {!end_op} ran or after {!clear}). *)
val op_root_span : t -> int -> int option

(** Retained spans, oldest first. *)
val spans : t -> span list

(** [spans_of_op t op] — the retained spans of one operation, oldest
    first (the root span included). *)
val spans_of_op : t -> int -> span list

(** Span ids minted so far (monotonic; survives {!clear}). *)
val spans_started : t -> int

(** Still-open spans evicted by ring-buffer wraparound. *)
val span_orphans : t -> int

(** {!end_span} calls naming an id that was never minted. *)
val orphan_ends : t -> int

(** {!end_span} calls whose span had already been evicted by ring-buffer
    wraparound — distinct from {!orphan_ends} because eviction is a
    capacity artifact, not a protocol bug. *)
val evicted_ends : t -> int

(** Operations that fell in the sampled set (all of them at rate 1). *)
val ops_sampled : t -> int

(** {!begin_span}/{!mark_span} calls skipped because their op was
    unsampled (distinct from {!spans_suppressed}). *)
val spans_unsampled : t -> int

(** Double ends and backwards-time ends. *)
val span_mismatches : t -> int

(** Spans refused because their parent had already closed. *)
val spans_suppressed : t -> int

(** Span stops clamped to a closed parent's stop. *)
val spans_clamped : t -> int

(** Number of operation ids minted so far. *)
val ops_started : t -> int

(** Number of events currently retained. *)
val length : t -> int

(** Total events ever recorded (including dropped ones). *)
val total_recorded : t -> int

(** Retained events, oldest first. *)
val events : t -> event list

(** [find t ~tag] retains only events with the given tag, oldest first. *)
val find : t -> tag:string -> event list

(** [events_of_op t op] — the retained events of one operation, oldest
    first: the operation's replayable hop-by-hop record. *)
val events_of_op : t -> int -> event list

(** [clear t] empties the buffer (events and spans; still-open operations
    lose their root, so their later spans are suppressed).  The lifetime
    accounting survives:
    {!total_recorded} and {!ops_started} keep counting from where they
    were, so a consumer draining the buffer in slices still sees how much
    was ever recorded.  Use {!reset} to also zero the counters. *)
val clear : t -> unit

(** [reset t] empties the buffer {e and} zeroes the lifetime counters:
    after [reset], {!total_recorded} and {!ops_started} are [0] and the
    next {!begin_op} mints id [0] again — a fresh trace in place.  Only
    safe when no live operation id minted before the reset will be used
    afterwards (ids restart and would collide). *)
val reset : t -> unit

(** [pp_event ppf e] prints one event:
    ["%.3f [tag] op=N #src->#dst detail"] (op and hosts only when set). *)
val pp_event : Format.formatter -> event -> unit

(** [pp ppf t] prints one event per line with {!pp_event}. *)
val pp : Format.formatter -> t -> unit
