examples/quickstart.ml: Hybrid_p2p List P2p_net Printf
