lib/core/hybrid.ml: Array Config Data_ops Data_store Failure Float Hashtbl List P2p_net P2p_sim P2p_stats P2p_topology Peer Printf S_network T_network World
