(* One live ring node: the protocol logic a [p2psim serve] worker
   process runs over {!Live_transport}.

   Bootstrap is tracker-style (the paper's BitTorrent-like s-network,
   §5): every node announces itself to node 0; once the tracker has
   heard from all [n] members it broadcasts the full peer list, and each
   node derives its ring position — successor and predecessor by p_id
   order — locally.  Connection refusals during the race where workers
   come up in arbitrary order are absorbed by the transport's
   retry/backoff, so announces need no application-level retry.

   Data operations route Chord-style around the successor ring: a node
   owning the key's [d_id] (half-open arc (pred, self]) serves it,
   anyone else forwards to its successor with the hop counter bumped.
   Client requests enter at any node; that entry node remembers the
   requesting client per request id and relays the ring's answer back as
   a [Client_reply].

   Every node audits itself: each stored key must hash into the node's
   own arc, the peer list must have exactly [n] members, and a routed
   message must never exceed [2n] hops.  Violations are counted and
   published in the periodic JSONL health dump ([health-<node>.jsonl]),
   one self-describing object per line, which the orchestrator collects
   after shutdown. *)

module Json = P2p_obs.Json
module Id_space = P2p_hashspace.Id_space
module Key_hash = P2p_hashspace.Key_hash

type t = {
  node : int;
  n : int;
  p_id : int;
  tr : Live_transport.t;
  store : (string, string) Hashtbl.t;
  mutable peers : (int * int) list;  (* (node, p_id), sorted by p_id *)
  mutable succ : int;
  mutable pred : int;
  mutable pred_id : int;
  mutable ready : bool;
  pending : (int, int) Hashtbl.t;  (* request id -> client node *)
  mutable violations : int;
  mutable hops_served : int;
  mutable served : int;
  dump : out_channel option;
  mutable stopping : bool;
  (* tracker state (node 0 only) *)
  announced : (int, int * int) Hashtbl.t;  (* node -> (p_id, port) *)
}

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let owns t d_id =
  t.n = 1 || Id_space.between_incl_right d_id ~left:t.pred_id ~right:t.p_id

let max_hops t = 2 * t.n

(* --- health dump ----------------------------------------------------- *)

let dump_health t ~event =
  match t.dump with
  | None -> ()
  | Some oc ->
    let s = Live_transport.stats t.tr in
    let line =
      Json.Obj
        [
          ("ts", Json.Float (Unix.gettimeofday ()));
          ("event", Json.String event);
          ("node", Json.Int t.node);
          ("p_id", Json.Int t.p_id);
          ("ready", Json.Bool t.ready);
          ("store", Json.Int (Hashtbl.length t.store));
          ("served", Json.Int t.served);
          ("hops_served", Json.Int t.hops_served);
          ("violations", Json.Int t.violations);
          ("msgs_sent", Json.Int s.msgs_sent);
          ("msgs_received", Json.Int s.msgs_received);
          ("bytes_sent", Json.Int s.bytes_sent);
          ("bytes_received", Json.Int s.bytes_received);
          ("retries", Json.Int s.retries);
          ("window_stalls", Json.Int s.window_stalls);
          ("drops", Json.Int s.drops);
          ("decode_errors", Json.Int s.decode_errors);
          ("timer_cancel_late", Json.Int (P2p_sim.Timer.cancel_late ()));
        ]
    in
    output_string oc (Json.to_string line);
    output_char oc '\n';
    flush oc

(* --- self-audit ------------------------------------------------------ *)

let audit t =
  if t.ready then begin
    if List.length t.peers <> t.n then t.violations <- t.violations + 1;
    Hashtbl.iter
      (fun key _ ->
        if not (owns t (Key_hash.of_string key)) then
          t.violations <- t.violations + 1)
      t.store
  end

(* --- ring bootstrap -------------------------------------------------- *)

let send t ~dst msg = Live_transport.send t.tr ~src:t.node ~dst msg

let apply_peers t peers =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare a b)
      (List.map (fun (node, p_id, _port) -> (node, p_id)) peers)
  in
  t.peers <- sorted;
  let len = List.length sorted in
  let idx = ref 0 in
  List.iteri (fun i (node, _) -> if node = t.node then idx := i) sorted;
  let succ_node, _ = List.nth sorted ((!idx + 1) mod len) in
  let pred_node, pred_id = List.nth sorted ((!idx + len - 1) mod len) in
  t.succ <- succ_node;
  t.pred <- pred_node;
  t.pred_id <- pred_id;
  t.ready <- true

let tracker_maybe_broadcast t =
  if t.node = 0 && Hashtbl.length t.announced = t.n then begin
    let peers =
      List.sort compare
        (Hashtbl.fold
           (fun node (p_id, port) acc -> (node, p_id, port) :: acc)
           t.announced [])
    in
    List.iter
      (fun (node, _, _) ->
        if node = t.node then apply_peers t peers
        else send t ~dst:node (Wire.Tracker_peers { peers }))
      peers
  end

(* --- data path ------------------------------------------------------- *)

let reply_client t ~req ~found ~value ~holder ~hops =
  match Hashtbl.find_opt t.pending req with
  | None -> ()
  | Some client ->
    Hashtbl.remove t.pending req;
    send t ~dst:client (Wire.Client_reply { req; found; value; holder; hops })

let route_insert t ~op ~origin ~route_id ~key ~value ~hops =
  if hops > max_hops t then t.violations <- t.violations + 1
  else if owns t (Key_hash.of_string key) then begin
    Hashtbl.replace t.store key value;
    t.served <- t.served + 1;
    t.hops_served <- t.hops_served + hops;
    if origin = t.node then
      reply_client t ~req:op ~found:true ~value:"" ~holder:t.node ~hops
    else
      send t ~dst:origin (Wire.Insert_ack { op; holder = t.node; hops })
  end
  else if t.succ = t.node then t.violations <- t.violations + 1
  else
    send t ~dst:t.succ
      (Wire.Insert { op; origin; route_id; key; value; hops = hops + 1 })

let route_lookup t ~op ~origin ~route_id ~key ~ttl ~hops =
  if hops > max_hops t then t.violations <- t.violations + 1
  else if owns t (Key_hash.of_string key) then begin
    t.served <- t.served + 1;
    t.hops_served <- t.hops_served + hops;
    let answer =
      match Hashtbl.find_opt t.store key with
      | Some value -> Wire.Found { op; key; value; holder = t.node; hops }
      | None -> Wire.Not_found { op; key; hops }
    in
    if origin = t.node then
      match answer with
      | Wire.Found { value; holder; hops; _ } ->
        reply_client t ~req:op ~found:true ~value ~holder ~hops
      | _ -> reply_client t ~req:op ~found:false ~value:"" ~holder:(-1) ~hops
    else send t ~dst:origin answer
  end
  else if t.succ = t.node then t.violations <- t.violations + 1
  else
    send t ~dst:t.succ
      (Wire.Lookup { op; origin; route_id; key; ttl; hops = hops + 1 })

(* --- dispatch -------------------------------------------------------- *)

let handle t ~src msg =
  match msg with
  | Wire.Tracker_announce { host; p_id; port } ->
    if t.node = 0 then begin
      Hashtbl.replace t.announced host (p_id, port);
      tracker_maybe_broadcast t
    end
  | Wire.Tracker_peers { peers } -> apply_peers t peers
  | Wire.Insert { op; origin; route_id; key; value; hops } ->
    route_insert t ~op ~origin ~route_id ~key ~value ~hops
  | Wire.Insert_ack { op; holder; hops } ->
    reply_client t ~req:op ~found:true ~value:"" ~holder ~hops
  | Wire.Lookup { op; origin; route_id; key; ttl; hops } ->
    route_lookup t ~op ~origin ~route_id ~key ~ttl ~hops
  | Wire.Found { op; value; holder; hops; _ } ->
    reply_client t ~req:op ~found:true ~value ~holder ~hops
  | Wire.Not_found { op; hops; _ } ->
    reply_client t ~req:op ~found:false ~value:"" ~holder:(-1) ~hops
  | Wire.Client_insert { req; key; value } ->
    Hashtbl.replace t.pending req src;
    route_insert t ~op:req ~origin:t.node ~route_id:req ~key ~value ~hops:0
  | Wire.Client_lookup { req; key } ->
    Hashtbl.replace t.pending req src;
    route_lookup t ~op:req ~origin:t.node ~route_id:req ~key
      ~ttl:(max_hops t) ~hops:0
  | Wire.Status_request { req } ->
    send t ~dst:src
      (Wire.Status
         {
           req;
           node = t.node;
           ready = t.ready;
           store = Hashtbl.length t.store;
           violations = t.violations;
         })
  | Wire.Shutdown -> t.stopping <- true
  | Wire.Ping { nonce } -> send t ~dst:src (Wire.Pong { nonce })
  | _ -> ()

(* --- lifecycle ------------------------------------------------------- *)

(* [client] is the orchestrator's node index (= [n]); it gets an address
   so replies can dial back to it. *)
let create ?dump_dir ~node ~n ~port_base () =
  let port = port_base + node in
  let p_id = Key_hash.of_address ~ip:"127.0.0.1" ~port in
  let tr = Live_transport.create ~p_id ~self:node () in
  for peer = 0 to n do
    Live_transport.set_peer_addr tr peer (loopback (port_base + peer))
  done;
  Live_transport.listen tr (loopback port);
  let dump =
    Option.map
      (fun dir ->
        open_out (Filename.concat dir (Printf.sprintf "health-%d.jsonl" node)))
      dump_dir
  in
  let t =
    {
      node;
      n;
      p_id;
      tr;
      store = Hashtbl.create 256;
      peers = [];
      succ = node;
      pred = node;
      pred_id = p_id;
      ready = false;
      pending = Hashtbl.create 64;
      violations = 0;
      hops_served = 0;
      served = 0;
      dump;
      stopping = false;
      announced = Hashtbl.create 16;
    }
  in
  Live_transport.set_handler tr (fun ~src ~dst:_ msg -> handle t ~src msg);
  (* Announce to the tracker; node 0 announces to itself locally. *)
  if node = 0 then begin
    Hashtbl.replace t.announced 0 (p_id, port);
    tracker_maybe_broadcast t
  end
  else send t ~dst:0 (Wire.Tracker_announce { host = node; p_id; port });
  dump_health t ~event:"start";
  ignore
    (Live_transport.periodic tr ~period:500. (fun () ->
         audit t;
         dump_health t ~event:"tick"));
  t

let ready t = t.ready

let step ?timeout t = Live_transport.step ?timeout t.tr

let transport t = t.tr

let violations t = t.violations

let stop t =
  audit t;
  dump_health t ~event:"final";
  (match t.dump with Some oc -> close_out oc | None -> ());
  Live_transport.stop t.tr

(* Run until a [Shutdown] frame arrives, then flush a final health line
   and close every socket.  A few extra steps before closing let the
   last replies (and other nodes' shutdowns) drain. *)
let run t =
  while not t.stopping do
    ignore (step ~timeout:0.05 t)
  done;
  for _ = 1 to 5 do
    ignore (step ~timeout:0.01 t)
  done;
  stop t
