lib/core/config.mli:
