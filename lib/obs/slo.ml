(* Latency SLO gates: parse "<target>:p<N><=<limit>" specs and check
   them against a metrics registry, so a bench run (or CI) can fail on a
   tail-latency regression instead of eyeballing a report.

   The target is either an explicit "<subsystem>/<name>" metric path, or
   an op-kind shorthand like "lookup" that resolves to the span-derived
   log histogram latency/<kind>_total_ms when the run recorded spans,
   falling back to the always-populated data_ops/<kind>_latency_ms
   summary otherwise (bench systems run without a trace). *)

module Summary = P2p_stats.Summary

type spec = { raw : string; target : string; quantile : float; limit : float }

type verdict = {
  spec : spec;
  metric : string; (* "<subsystem>/<name>" actually consulted *)
  measured : float;
  ok : bool;
}

let parse raw =
  match String.index_opt raw ':' with
  | None -> Error (Printf.sprintf "SLO %S: expected <target>:p<N><=<limit>" raw)
  | Some i -> (
    let target = String.sub raw 0 i in
    let rest = String.sub raw (i + 1) (String.length raw - i - 1) in
    let split_on_le s =
      let n = String.length s in
      let rec scan j =
        if j + 1 >= n then None
        else if s.[j] = '<' && s.[j + 1] = '=' then
          Some (String.sub s 0 j, String.sub s (j + 2) (n - j - 2))
        else scan (j + 1)
      in
      scan 0
    in
    match split_on_le rest with
    | None -> Error (Printf.sprintf "SLO %S: missing \"<=\"" raw)
    | Some (q, lim) -> (
      if target = "" then Error (Printf.sprintf "SLO %S: empty target" raw)
      else if String.length q < 2 || q.[0] <> 'p' then
        Error (Printf.sprintf "SLO %S: quantile must look like p99" raw)
      else
        match
          ( float_of_string_opt (String.sub q 1 (String.length q - 1)),
            float_of_string_opt lim )
        with
        | Some quantile, Some limit when quantile >= 0.0 && quantile <= 100.0 ->
          Ok { raw; target; quantile; limit }
        | Some _, Some _ ->
          Error (Printf.sprintf "SLO %S: quantile out of [0,100]" raw)
        | _ -> Error (Printf.sprintf "SLO %S: bad number" raw)))

let find_binding reg ~subsystem ~name =
  List.find_opt
    (fun (b : Registry.binding) ->
      b.Registry.subsystem = subsystem && b.Registry.name = name)
    (Registry.bindings reg)

let quantile_of_binding (b : Registry.binding) q =
  match b.Registry.metric with
  | Registry.Log l when Log_hist.count l > 0 -> Some (Log_hist.percentile l q)
  | Registry.Histogram h when Summary.count (Registry.summary h) > 0 ->
    Some (Summary.percentile (Registry.summary h) q)
  | _ -> None

let candidates target =
  match String.index_opt target '/' with
  | Some i ->
    [
      ( String.sub target 0 i,
        String.sub target (i + 1) (String.length target - i - 1) );
    ]
  | None ->
    [ ("latency", target ^ "_total_ms"); ("data_ops", target ^ "_latency_ms") ]

let check reg spec =
  let rec try_candidates = function
    | [] ->
      Error
        (Printf.sprintf "SLO %S: no populated metric for target %S (tried %s)"
           spec.raw spec.target
           (String.concat ", "
              (List.map
                 (fun (s, n) -> s ^ "/" ^ n)
                 (candidates spec.target))))
    | (subsystem, name) :: rest -> (
      match find_binding reg ~subsystem ~name with
      | Some b -> (
        match quantile_of_binding b spec.quantile with
        | Some measured ->
          Ok
            {
              spec;
              metric = subsystem ^ "/" ^ name;
              measured;
              ok = measured <= spec.limit;
            }
        | None -> try_candidates rest)
      | None -> try_candidates rest)
  in
  try_candidates (candidates spec.target)

let describe v =
  Printf.sprintf "SLO %s: %s p%g = %.3f ms %s %g (%s)" v.spec.raw v.metric
    v.spec.quantile v.measured
    (if v.ok then "<=" else ">")
    v.spec.limit
    (if v.ok then "PASS" else "FAIL")

(* Parse every spec, check each against the registry, print one line per
   verdict, and say whether the whole gate holds.  Parse and resolution
   errors fail the gate (a typo must not pass CI silently). *)
let enforce reg ~specs ~print =
  List.fold_left
    (fun all_ok raw ->
      match Result.bind (parse raw) (check reg) with
      | Ok v ->
        print (describe v);
        all_ok && v.ok
      | Error msg ->
        print msg;
        false)
    true specs
