lib/hashspace/key_hash.mli: Id_space
