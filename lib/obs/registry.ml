module Summary = P2p_stats.Summary

type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = { summary : Summary.t }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  table : (string * string, metric) Hashtbl.t;
  mutable order : (string * string) list; (* registration order, reversed *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let add_key t key metric =
  Hashtbl.replace t.table key metric;
  t.order <- key :: t.order

let counter t ~subsystem ~name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt t.table key with
  | Some (Counter c) -> c
  | Some _ ->
    invalid_arg (Printf.sprintf "Registry.counter: %s/%s is not a counter" subsystem name)
  | None ->
    let c = { count = 0 } in
    add_key t key (Counter c);
    c

let gauge t ~subsystem ~name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt t.table key with
  | Some (Gauge g) -> g
  | Some _ ->
    invalid_arg (Printf.sprintf "Registry.gauge: %s/%s is not a gauge" subsystem name)
  | None ->
    let g = { value = 0.0 } in
    add_key t key (Gauge g);
    g

let histogram t ~subsystem ~name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt t.table key with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Registry.histogram: %s/%s is not a histogram" subsystem name)
  | None ->
    let h = { summary = Summary.create () } in
    add_key t key (Histogram h);
    h

let incr ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let set g v = g.value <- v

let set_max g v = if v > g.value then g.value <- v

let gauge_value g = g.value

let observe h v = Summary.add h.summary v

let summary h = h.summary

(* --- iteration / export --- *)

type binding = { subsystem : string; name : string; metric : metric }

let bindings t =
  List.rev_map
    (fun ((subsystem, name) as key) ->
      { subsystem; name; metric = Hashtbl.find t.table key })
    t.order

let subsystems t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun b ->
      if Hashtbl.mem seen b.subsystem then None
      else begin
        Hashtbl.add seen b.subsystem ();
        Some b.subsystem
      end)
    (bindings t)

(* Fixed-width bucketing of a summary's samples for report rendering:
   [bins] (lo, count) pairs covering [min, max]. *)
let histogram_bins ?(bins = 12) s =
  let n = Summary.count s in
  if n = 0 then []
  else begin
    let lo = Summary.min s and hi = Summary.max s in
    if lo = hi then [ (lo, n) ]
    else begin
      let width = (hi -. lo) /. float_of_int bins in
      let counts = Array.make bins 0 in
      Array.iter
        (fun x ->
          let b = int_of_float ((x -. lo) /. width) in
          let b = Stdlib.min (bins - 1) (Stdlib.max 0 b) in
          counts.(b) <- counts.(b) + 1)
        (Summary.samples s);
      List.init bins (fun b -> (lo +. (float_of_int b *. width), counts.(b)))
    end
  end

let summary_to_json s =
  let base = [ ("kind", Json.String "histogram"); ("count", Json.Int (Summary.count s)) ] in
  if Summary.count s = 0 then Json.Obj base
  else
    Json.Obj
      (base
      @ [
          ("mean", Json.Float (Summary.mean s));
          ("stddev", Json.Float (Summary.stddev s));
          ("min", Json.Float (Summary.min s));
          ("p50", Json.Float (Summary.median s));
          ("p90", Json.Float (Summary.percentile s 90.0));
          ("p99", Json.Float (Summary.percentile s 99.0));
          ("max", Json.Float (Summary.max s));
          ( "bins",
            Json.List
              (List.map
                 (fun (lo, count) ->
                   Json.Obj [ ("lo", Json.Float lo); ("count", Json.Int count) ])
                 (histogram_bins s)) );
        ])

let metric_to_json = function
  | Counter c -> Json.Obj [ ("kind", Json.String "counter"); ("value", Json.Int c.count) ]
  | Gauge g -> Json.Obj [ ("kind", Json.String "gauge"); ("value", Json.Float g.value) ]
  | Histogram h -> summary_to_json h.summary

let to_json t =
  let by_subsystem =
    List.map
      (fun subsystem ->
        let fields =
          List.filter_map
            (fun b ->
              if b.subsystem = subsystem then Some (b.name, metric_to_json b.metric)
              else None)
            (bindings t)
        in
        (subsystem, Json.Obj fields))
      (subsystems t)
  in
  Json.Obj by_subsystem

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "subsystem,name,kind,count,value,mean,min,max\n";
  List.iter
    (fun b ->
      match b.metric with
      | Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,counter,%d,%d,,,\n" b.subsystem b.name c.count c.count)
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,gauge,,%g,,,\n" b.subsystem b.name g.value)
      | Histogram h ->
        let s = h.summary in
        if Summary.count s = 0 then
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,histogram,0,,,,\n" b.subsystem b.name)
        else
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,histogram,%d,,%g,%g,%g\n" b.subsystem b.name
               (Summary.count s) (Summary.mean s) (Summary.min s) (Summary.max s)))
    (bindings t);
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun subsystem ->
      Format.fprintf ppf "%s:@," subsystem;
      List.iter
        (fun b ->
          if b.subsystem = subsystem then
            match b.metric with
            | Counter c -> Format.fprintf ppf "  %-28s %d@," b.name c.count
            | Gauge g -> Format.fprintf ppf "  %-28s %g@," b.name g.value
            | Histogram h -> Format.fprintf ppf "  %-28s %a@," b.name Summary.pp h.summary)
        (bindings t))
    (subsystems t);
  Format.fprintf ppf "@]"
