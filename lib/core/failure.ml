module Transport = P2p_transport.Transport
module Trace = P2p_sim.Trace

(* Every overlay link a peer maintains: its tree edges plus, for a t-peer,
   its ring neighbours. *)
let overlay_neighbors peer =
  let ring =
    if Peer.is_t_peer peer then
      List.filter_map Fun.id [ peer.Peer.succ; peer.Peer.pred ]
      |> List.filter (fun q -> q != peer)
    else []
  in
  Peer.tree_neighbors peer @ ring

let is_neighbor peer q = List.exists (fun n -> n == q) (overlay_neighbors peer)

let cancel_watchdogs peer =
  Hashtbl.iter (fun _ t -> Transport.cancel t) peer.Peer.watchdogs;
  Hashtbl.reset peer.Peer.watchdogs

(* Collect the live members of a crashed t-peer's former s-network by
   walking through dead intermediate nodes. *)
let live_descendants dead =
  let rec walk acc p =
    let acc = if p.Peer.alive then p :: acc else acc in
    List.fold_left walk acc p.Peer.children
  in
  List.fold_left walk [] dead.Peer.children

(* Rewire the whole live ring from the sorted oracle — the end state the
   stabilization protocol reaches after an excision. *)
let rebuild_ring w =
  World.touch_ring w;
  let arr = World.t_peers w in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    arr.(i).Peer.succ <- Some arr.((i + 1) mod n);
    arr.(i).Peer.pred <- Some arr.((i + n - 1) mod n)
  done;
  World.ensure_fingers w

(* The server election of Section 3.2.2: the surviving member with the
   smallest address replaces the crashed t-peer.  Memoized per victim so
   concurrent detections agree. *)
let elect w ~dead =
  match Hashtbl.find_opt w.World.pending_election dead.Peer.host with
  | Some result -> result
  | None ->
    let result =
      match live_descendants dead with
      | [] ->
        (* Nobody to promote: the segment dissolves into the successor's. *)
        rebuild_ring w;
        None
      | members ->
        let smallest =
          List.fold_left
            (fun best m -> if m.Peer.host < best.Peer.host then m else best)
            (List.hd members) (List.tl members)
        in
        T_network.promote_replacement w ~old_peer:dead ~replacement:smallest
          ~transfer_data:false ();
        Some smallest
    in
    World.bump w ~subsystem:"failure" ~name:"elections";
    Hashtbl.replace w.World.pending_election dead.Peer.host result;
    result

let rec arm_watchdog w peer ~target =
  match Hashtbl.find_opt peer.Peer.watchdogs target.Peer.host with
  | Some t -> Transport.reset t
  | None ->
    let t =
      World.one_shot w ~delay:w.World.config.Config.hello_timeout (fun () ->
          on_timeout w peer ~target)
    in
    Hashtbl.replace peer.Peer.watchdogs target.Peer.host t

and on_timeout w peer ~target =
  Hashtbl.remove peer.Peer.watchdogs target.Peer.host;
  World.bump w ~subsystem:"failure" ~name:"watchdog_timeouts";
  if peer.Peer.alive then
    if target.Peer.alive then begin
      (* False alarm (e.g. suppressed HELLOs); re-arm if still a neighbour. *)
      if is_neighbor peer target then arm_watchdog w peer ~target
    end
    else begin
      (* A genuine crash.  React according to which link died. *)
      if List.exists (fun c -> c == target) peer.Peer.children then
        peer.Peer.children <- List.filter (fun c -> c != target) peer.Peer.children;
      (match peer.Peer.cp with
       | Some cp when cp == target ->
         peer.Peer.cp <- None;
         let root =
           match peer.Peer.t_home with
           | Some home when home.Peer.alive -> Some home
           | Some home -> elect w ~dead:home
           | None -> None
         in
         (match root with
          | Some root when root != peer && peer.Peer.cp = None && Peer.is_s_peer peer ->
            World.send w ~src:peer ~dst:root (fun () ->
                if root.Peer.alive && peer.Peer.alive && peer.Peer.cp = None then
                  S_network.rejoin_subtree w ~child:peer ~root
                    ~on_done:(fun ~hops:_ -> ()) ())
          | Some _ | None -> ())
       | Some _ | None -> ());
      if Peer.is_t_peer peer && Peer.is_t_peer target then begin
        let was_ring_neighbor =
          (match peer.Peer.succ with Some s -> s == target | None -> false)
          || (match peer.Peer.pred with Some p -> p == target | None -> false)
        in
        if was_ring_neighbor then ignore (elect w ~dead:target : Peer.t option)
      end;
      (* durability: let the replication manager react to the confirmed
         crash (fires once per detecting neighbour; the manager
         debounces) *)
      match w.World.on_peer_failure with
      | Some react -> react target
      | None -> ()
    end

let on_hello w ~receiver ~sender =
  if receiver.Peer.alive && sender.Peer.alive then arm_watchdog w receiver ~target:sender

let broadcast_hello w peer () =
  if peer.Peer.alive then
    List.iter
      (fun neighbor ->
        World.send w ~src:peer ~dst:neighbor (fun () ->
            on_hello w ~receiver:neighbor ~sender:peer))
      (overlay_neighbors peer)

let enable_heartbeats w peer =
  if w.World.config.Config.heartbeats && peer.Peer.alive then begin
    (match peer.Peer.hello_timer with
     | Some t -> Transport.cancel t
     | None -> ());
    peer.Peer.hello_timer <-
      Some
        (World.periodic w ~period:w.World.config.Config.hello_period
           (broadcast_hello w peer));
    List.iter (fun neighbor -> arm_watchdog w peer ~target:neighbor) (overlay_neighbors peer)
  end

(* Acknowledgment machinery (Section 3.2.2): a queried peer acks the
   sender unless the suppress timer forbids it; the ack refreshes the
   sender's watchdog, and sending it postpones the peer's own HELLO. *)
let install_query_hook w =
  if w.World.config.Config.heartbeats then
    w.World.on_query <-
      Some
        (fun ~receiver ~sender ->
          if receiver.Peer.alive then begin
            let now = World.now w in
            if now -. receiver.Peer.last_ack_sent >= w.World.config.Config.suppress_period
            then begin
              receiver.Peer.last_ack_sent <- now;
              (* The scheduled HELLO is cancelled to save bandwidth: the ack
                 doubles as the heartbeat. *)
              (match receiver.Peer.hello_timer with
               | Some t -> Transport.reset t
               | None -> ());
              World.send w ~src:receiver ~dst:sender (fun () ->
                  if sender.Peer.alive && receiver.Peer.alive then
                    arm_watchdog w sender ~target:receiver)
            end
          end)

let crash w peer =
  if not peer.Peer.alive then invalid_arg "Failure.crash: peer already dead";
  World.bump w ~subsystem:"failure" ~name:"crashes";
  Trace.record (World.trace w) ~time:(World.now w) ~tag:"crash"
    ~src:peer.Peer.host
    (if Peer.is_t_peer peer then "t-peer" else "s-peer");
  peer.Peer.alive <- false;
  Data_store.clear peer.Peer.store;
  Data_store.clear peer.Peer.replicas;
  Cache.clear peer.Peer.cache;
  Hashtbl.reset peer.Peer.tracker_index;
  peer.Peer.bypass <- [];
  (match peer.Peer.hello_timer with
   | Some t ->
     Transport.cancel t;
     peer.Peer.hello_timer <- None
   | None -> ());
  cancel_watchdogs peer;
  World.unregister w peer

let repair w =
  let op = Trace.begin_op (World.trace w) ~time:(World.now w) ~kind:Trace.Repair "" in
  World.bump w ~subsystem:"failure" ~name:"repairs";
  let live = World.live_peers w in
  (* Pass 1: drop dead children everywhere. *)
  List.iter
    (fun p -> p.Peer.children <- List.filter (fun c -> c.Peer.alive) p.Peer.children)
    live;
  World.mark_span w ~op ~tier:"failure" ~phase:"heal_step" "drop dead children";
  (* Pass 2: elect replacements for every crashed t-peer that stranded
     live s-peers (smallest surviving address wins). *)
  let replacements : (int, Peer.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      match p.Peer.t_home with
      | Some home when (not home.Peer.alive) && not (Hashtbl.mem replacements home.Peer.host)
        -> begin
          match live_descendants home with
          | [] -> ()
          | members ->
            let smallest =
              List.fold_left
                (fun best m -> if m.Peer.host < best.Peer.host then m else best)
                (List.hd members) (List.tl members)
            in
            (* Orphans are reattached synchronously below; keep promote from
               racing them through async rejoins. *)
            home.Peer.children <- [];
            T_network.promote_replacement w ~op ~old_peer:home ~replacement:smallest
              ~transfer_data:false ();
            Hashtbl.replace replacements home.Peer.host smallest
        end
      | Some _ | None -> ())
    live;
  World.mark_span w ~op ~tier:"failure" ~phase:"heal_step" "elect replacements";
  (* Pass 3: reattach every stranded live s-peer (its cp died or its whole
     branch did), carrying its subtree. *)
  List.iter
    (fun p ->
      if Peer.is_s_peer p && p.Peer.alive then begin
        let stranded =
          match p.Peer.cp with
          | None -> true
          | Some cp -> not cp.Peer.alive
        in
        if stranded then begin
          p.Peer.cp <- None;
          let root =
            match p.Peer.t_home with
            | Some home when home.Peer.alive -> Some home
            | Some home -> Hashtbl.find_opt replacements home.Peer.host
            | None -> None
          in
          match root with
          | Some root when root != p -> S_network.rejoin_subtree_sync w ~child:p ~root
          | Some _ | None -> ()
        end
      end)
    live;
  World.mark_span w ~op ~tier:"failure" ~phase:"heal_step" "reattach stranded";
  (* Pass 4: rebuild the ring, clear stuck mutexes, refresh fingers. *)
  World.touch_ring w;
  let arr = World.t_peers w in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    let p = arr.(i) in
    p.Peer.succ <- Some arr.((i + 1) mod n);
    p.Peer.pred <- Some arr.((i + n - 1) mod n);
    p.Peer.joining <- false;
    p.Peer.leaving <- false;
    p.Peer.join_queue <- []
  done;
  World.ensure_fingers w;
  World.mark_span w ~op ~tier:"failure" ~phase:"heal_step" "rebuild ring";
  (* Pass 5: recount s-network sizes. *)
  Array.iter
    (fun tpeer ->
      World.set_snet_size w tpeer (List.length (Peer.tree_members tpeer) - 1))
    arr;
  World.mark_span w ~op ~tier:"failure" ~phase:"heal_step" "recount s-networks";
  (* Pass 6: re-home misplaced data.  Items written while the overlay was
     partitioned (e.g. into an orphaned s-peer whose t-peer had crashed)
     may now sit outside the segment their holder's s-network serves;
     stabilization transfers them to the correct owner. *)
  if n > 0 then
    List.iter
      (fun p ->
        match p.Peer.t_home with
        | Some home when home.Peer.alive ->
          let left = Peer.segment_left home in
          (* the complement of the segment (left, p_id] is (p_id, left];
             a solo t-peer owns everything, so nothing is misplaced *)
          if left <> home.Peer.p_id then begin
            let misplaced =
              Data_store.take_segment p.Peer.store ~left:home.Peer.p_id ~right:left
            in
            List.iter
              (fun (key, value, route_id) ->
                match World.oracle_owner w route_id with
                | Some owner ->
                  Data_store.insert_routed owner.Peer.store ~route_id ~key ~value;
                  if w.World.config.Config.s_style = Config.Bittorrent_tracker then
                    Hashtbl.replace owner.Peer.tracker_index key owner
                | None -> ())
              misplaced
          end
        | Some _ | None -> ())
      (World.live_peers w);
  Hashtbl.reset w.World.pending_election;
  World.mark_span w ~op ~tier:"failure" ~phase:"heal_step" "re-home misplaced data";
  (* Pass 7 (when replication is on): the manager promotes surviving
     replicas of primaries that died with their holder and restores the
     replication factor onto the post-repair targets. *)
  (match w.World.on_repaired with
   | Some heal -> heal ~op:(Some op)
   | None -> ());
  Trace.end_op (World.trace w) ~time:(World.now w) ~op
    (Printf.sprintf "%d live peers" (World.peer_count w))
