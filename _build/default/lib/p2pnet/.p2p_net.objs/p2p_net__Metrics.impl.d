lib/p2pnet/metrics.ml: Format P2p_stats
