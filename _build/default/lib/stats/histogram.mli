(** Integer-valued histograms.

    Counts occurrences of non-negative integer observations (e.g. number of
    data items stored per peer, hop counts).  Bins grow on demand. *)

type t

val create : unit -> t

(** [observe t v] increments the count of value [v].
    @raise Invalid_argument if [v < 0]. *)
val observe : t -> int -> unit

(** [observe_many t v n] records [n] occurrences of [v]. *)
val observe_many : t -> int -> int -> unit

(** [count t v] is the number of observations equal to [v]. *)
val count : t -> int -> int

(** Total number of observations. *)
val total : t -> int

(** Largest observed value; [-1] when empty. *)
val max_value : t -> int

(** [fraction t v] is [count t v / total t]; [0.] when empty. *)
val fraction : t -> int -> float

(** [fraction_at_most t v] is the empirical CDF at [v]. *)
val fraction_at_most : t -> int -> float

(** [to_assoc t] lists [(value, count)] pairs with non-zero counts in
    increasing value order. *)
val to_assoc : t -> (int * int) list

(** [rebin t ~width] groups values into buckets of [width] consecutive
    values and returns [(bucket_start, count)] pairs — used to plot the
    paper's Fig. 4 probability density functions.
    @raise Invalid_argument if [width <= 0]. *)
val rebin : t -> width:int -> (int * int) list

(** [mean t] is the mean observed value. *)
val mean : t -> float

val pp : Format.formatter -> t -> unit
