(* Integration tests for the hybrid system facade: membership, data
   operations, churn, failure recovery, placement schemes, enhancements. *)

open Helpers
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Metrics = P2p_net.Metrics
module Summary = P2p_stats.Summary
module Rng = P2p_sim.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_bootstrap_single () =
  let h = H.create_star ~seed:1 ~peers:10 () in
  let p = H.join h ~host:0 ~role:Peer.S_peer () in
  (* first peer always becomes a t-peer *)
  H.run h;
  checkb "forced t-peer" true (Peer.is_t_peer p);
  checki "one peer" 1 (H.peer_count h);
  ok_invariants h

let test_grow_ratio () =
  let h, _ = star_system ~n:200 ~ps:0.7 () in
  checki "population" 200 (H.peer_count h);
  let t = H.t_peer_count h in
  (* 30% expected t-peers; allow generous slack for the coin flips *)
  checkb (Printf.sprintf "t-peers %d near 60" t) true (t > 35 && t < 90);
  ok_invariants h

let test_grow_extremes () =
  let h0, _ = star_system ~seed:5 ~n:60 ~ps:0.0 () in
  checki "ps=0: all t-peers" 60 (H.t_peer_count h0);
  ok_invariants h0;
  let h1, _ = star_system ~seed:6 ~n:60 ~ps:1.0 () in
  checki "ps=1: single t-peer" 1 (H.t_peer_count h1);
  checki "rest s-peers" 59 (H.s_peer_count h1);
  ok_invariants h1

let test_join_occupied_host () =
  let h = H.create_star ~seed:2 ~peers:10 () in
  ignore (H.join h ~host:3 () : Peer.t);
  H.run h;
  Alcotest.check_raises "occupied" (Invalid_argument "Hybrid.join: host already occupied")
    (fun () -> ignore (H.join h ~host:3 () : Peer.t))

let test_join_bad_host () =
  let h = H.create_star ~seed:2 ~peers:10 () in
  Alcotest.check_raises "outside topology"
    (Invalid_argument "Hybrid.join: host outside the physical topology") (fun () ->
      ignore (H.join h ~host:1000 () : Peer.t))

let test_join_latency_recorded () =
  let h, _ = star_system ~n:50 ~ps:0.5 () in
  let m = H.metrics h in
  checki "all joins recorded" 50 (Summary.count (Metrics.join_latency m));
  checkb "join hops positive on average" true (Summary.mean (Metrics.join_hops m) > 0.0)

let test_insert_lookup_roundtrip () =
  let h, _ = star_system ~n:120 ~ps:0.6 () in
  let keys = insert_items h ~count:300 in
  checki "all stored" 300 (H.total_items h);
  ok_invariants h;
  List.iter
    (fun key ->
      let r = lookup_sync h ~from:(H.random_peer h) ~key () in
      checkb ("found " ^ key) true (found r))
    keys

let test_lookup_absent_times_out () =
  let h, _ = star_system ~n:60 ~ps:0.5 () in
  let r = lookup_sync h ~from:(H.random_peer h) ~key:"never-inserted" () in
  checkb "timed out" false (found r);
  checki "failure recorded" 1 (Metrics.lookups_failed (H.metrics h))

let test_lookup_own_item_is_fast () =
  let h, _ = star_system ~n:80 ~ps:0.5 () in
  (* find a peer and a key its own s-network serves *)
  let p = H.random_peer h in
  let keys = insert_items h ~count:50 in
  let local_key =
    List.find_opt
      (fun key ->
        match p.Peer.t_home with
        | Some home -> Peer.covers home (P2p_hashspace.Key_hash.of_string key)
        | None -> false)
      keys
  in
  match local_key with
  | None -> () (* unlucky segment; nothing to assert *)
  | Some key ->
    let r = lookup_sync h ~from:p ~key () in
    (match r with
     | Data_ops.Found { hops; _ } ->
       checkb (Printf.sprintf "local lookup cheap (%d hops)" hops) true (hops <= 10)
     | Data_ops.Timed_out -> Alcotest.fail "local lookup failed")

let test_placement_scheme_a_concentrates () =
  let config = { default_config with Config.placement = Config.Store_at_tpeer } in
  let h, _ = star_system ~config ~seed:7 ~n:150 ~ps:0.8 () in
  ignore (insert_items h ~count:600 : string list);
  (* under scheme A every cross-network item lands on a t-peer *)
  let s_items =
    List.fold_left
      (fun acc p ->
        if Peer.is_s_peer p then acc + Hybrid_p2p.Data_store.size p.Peer.store else acc)
      0 (H.peers h)
  in
  let t_items = H.total_items h - s_items in
  checkb
    (Printf.sprintf "t-peers hold the bulk (%d t vs %d s)" t_items s_items)
    true
    (t_items > 2 * s_items)

let test_placement_scheme_b_spreads () =
  let config = { default_config with Config.placement = Config.Spread_to_neighbors } in
  let h, _ = star_system ~config ~seed:7 ~n:150 ~ps:0.8 () in
  ignore (insert_items h ~count:600 : string list);
  let dist = H.data_distribution h in
  let zero_fraction = P2p_stats.Pdf.fraction_zero dist in
  checkb
    (Printf.sprintf "spread leaves few empty peers (%.2f empty)" zero_fraction)
    true (zero_fraction < 0.6);
  ok_invariants h

let test_graceful_leave_keeps_data () =
  let h, _ = star_system ~seed:8 ~n:100 ~ps:0.6 () in
  let keys = insert_items h ~count:200 in
  let total_before = H.total_items h in
  (* make 20 random peers leave gracefully *)
  for _ = 1 to 20 do
    H.leave h (H.random_peer h) ();
    H.run h
  done;
  checki "population shrank" 80 (H.peer_count h);
  checki "no data lost" total_before (H.total_items h);
  ok_invariants h;
  (* everything still findable *)
  List.iter
    (fun key ->
      let r = lookup_sync h ~from:(H.random_peer h) ~key () in
      checkb ("still found " ^ key) true (found r))
    keys

let test_t_peer_leave_promotes () =
  let h, _ = star_system ~seed:9 ~n:60 ~ps:0.8 () in
  let tpeer =
    List.find (fun p -> Peer.is_t_peer p && p.Peer.children <> []) (H.peers h)
  in
  let old_pid = tpeer.Peer.p_id in
  let t_count = H.t_peer_count h in
  H.leave h tpeer ();
  H.run h;
  checki "t-peer population unchanged" t_count (H.t_peer_count h);
  checkb "replacement carries the p_id" true
    (List.exists
       (fun p -> Peer.is_t_peer p && p.Peer.p_id = old_pid)
       (H.peers h));
  ok_invariants h

let test_last_t_peer_leave () =
  let h = H.create_star ~seed:10 ~peers:10 () in
  let p = H.join h ~host:0 () in
  H.run h;
  H.leave h p ();
  H.run h;
  checki "empty system" 0 (H.peer_count h)

let test_crash_repair_storm () =
  let h, _ = star_system ~seed:11 ~n:150 ~ps:0.7 () in
  ignore (insert_items h ~count:300 : string list);
  let before = H.total_items h in
  let victims =
    List.filteri (fun i _ -> i mod 5 = 0) (H.peers h)
  in
  List.iter (fun v -> H.crash h v) victims;
  H.repair h;
  H.run h;
  checki "population" 120 (H.peer_count h);
  checkb "some data lost" true (H.total_items h < before);
  ok_invariants h

let test_crash_all_t_peers () =
  let h, _ = star_system ~seed:12 ~n:60 ~ps:0.7 () in
  let tpeers = List.filter Peer.is_t_peer (H.peers h) in
  List.iter (fun v -> H.crash h v) tpeers;
  H.repair h;
  H.run h;
  checkb "replacements promoted" true (H.t_peer_count h > 0);
  ok_invariants h

let test_surviving_lookups_after_crash () =
  let h, _ = star_system ~seed:13 ~n:120 ~ps:0.6 () in
  let keys = insert_items h ~count:200 in
  let victims = List.filteri (fun i _ -> i mod 10 = 0) (H.peers h) in
  List.iter (fun v -> H.crash h v) victims;
  H.repair h;
  H.run h;
  (* count how many keys survived in stores *)
  let surviving = H.total_items h in
  let found_count = ref 0 in
  List.iter
    (fun key ->
      let r = lookup_sync h ~from:(H.random_peer h) ~key () in
      if found r then incr found_count)
    keys;
  checkb
    (Printf.sprintf "findable (%d) matches surviving (%d)" !found_count surviving)
    true
    (abs (!found_count - surviving) <= surviving / 10)

let test_heartbeat_detects_spier_crash () =
  let config =
    { default_config with Config.heartbeats = true; hello_period = 10.0;
      hello_timeout = 35.0 }
  in
  let h, _ = star_system ~config ~seed:14 ~n:40 ~ps:0.8 () in
  ok_invariants h;
  (* crash an s-peer that has children: the subtree must rejoin online *)
  match
    List.find_opt (fun p -> Peer.is_s_peer p && p.Peer.children <> []) (H.peers h)
  with
  | None -> () (* no such shape this seed; covered elsewhere *)
  | Some victim ->
    H.crash h victim;
    H.run_for h 500.0;
    ok_invariants h;
    checki "population shrank by one" 39 (H.peer_count h)

let test_heartbeat_detects_tpeer_crash () =
  let config =
    { default_config with Config.heartbeats = true; hello_period = 10.0;
      hello_timeout = 35.0 }
  in
  let h, _ = star_system ~config ~seed:15 ~n:40 ~ps:0.7 () in
  let victim = List.find (fun p -> Peer.is_t_peer p && p.Peer.children <> []) (H.peers h) in
  let old_pid = victim.Peer.p_id in
  H.crash h victim;
  H.run_for h 1000.0;
  checkb "an s-peer took over the ring position" true
    (List.exists (fun p -> Peer.is_t_peer p && p.Peer.p_id = old_pid) (H.peers h));
  ok_invariants h

let test_bittorrent_mode () =
  let config = { default_config with Config.s_style = Config.Bittorrent_tracker } in
  let h, _ = star_system ~config ~seed:16 ~n:100 ~ps:0.7 () in
  let keys = insert_items h ~count:200 in
  List.iter
    (fun key ->
      let r = lookup_sync h ~from:(H.random_peer h) ~key () in
      checkb ("tracker found " ^ key) true (found r))
    keys;
  ok_invariants h

let test_bypass_links_accelerate () =
  let config =
    { default_config with Config.bypass_enabled = true; bypass_lifetime = 1e9 }
  in
  let h, _ = star_system ~config ~seed:17 ~n:100 ~ps:0.8 () in
  ignore (insert_items h ~count:100 : string list);
  (* repeated cross-network lookups from the same peer install bypass
     links; eventually some exist *)
  let p = H.random_peer h in
  for _ = 1 to 30 do
    let key = Printf.sprintf "item-%05d" (Rng.int (P2p_sim.Engine.rng (H.engine h)) 100) in
    ignore (lookup_sync h ~from:p ~key () : Data_ops.lookup_outcome)
  done;
  let has_bypass =
    List.exists (fun q -> q.Peer.bypass <> []) (H.peers h)
  in
  checkb "bypass links installed" true has_bypass;
  ok_invariants h

let test_interest_policy_groups () =
  let h =
    H.create_star ~seed:18 ~peers:300 ~snet_policy:Hybrid_p2p.World.By_interest ()
  in
  (* seed t-peers; the two category homes are pinned at the categories'
     routing IDs so each category gets its own segment *)
  for host = 0 to 1 do
    ignore
      (H.join h ~host ~role:Peer.T_peer ~p_id:(Hybrid_p2p.Interest.route_id host) ()
        : Peer.t);
    H.run h
  done;
  for host = 2 to 9 do
    ignore (H.join h ~host ~role:Peer.T_peer () : Peer.t);
    H.run h
  done;
  (* s-peers with two interest categories *)
  let joined =
    List.init 40 (fun i ->
        let p =
          H.join h ~host:(10 + i) ~role:Peer.S_peer ~interest:(i mod 2) ()
        in
        H.run h;
        p)
  in
  (* peers sharing an interest share a t_home *)
  let home_of p = (Option.get p.Peer.t_home).Peer.host in
  let homes0 =
    List.sort_uniq compare
      (List.filteri (fun i _ -> i mod 2 = 0) joined |> List.map home_of)
  in
  let homes1 =
    List.sort_uniq compare
      (List.filteri (fun i _ -> i mod 2 = 1) joined |> List.map home_of)
  in
  checki "interest 0 in one s-network" 1 (List.length homes0);
  checki "interest 1 in one s-network" 1 (List.length homes1);
  checkb "different interests, different s-networks" true (homes0 <> homes1);
  ok_invariants h

let test_delta_respected_under_load () =
  let config = { default_config with Config.delta = 2 } in
  let h, _ = star_system ~config ~seed:19 ~n:100 ~ps:0.9 () in
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "peer #%d degree <= 2" p.Peer.host)
        true
        (Peer.tree_degree p <= 2))
    (H.peers h);
  ok_invariants h

let test_determinism () =
  let run () =
    let h, _ = star_system ~seed:77 ~n:80 ~ps:0.6 () in
    ignore (insert_items h ~count:100 : string list);
    (Metrics.messages (H.metrics h), H.total_items h, H.t_peer_count h)
  in
  let a = run () and b = run () in
  checkb "identical runs" true (a = b)

let suite =
  [
    Alcotest.test_case "bootstrap forces first t-peer" `Quick test_bootstrap_single;
    Alcotest.test_case "grow respects ratio" `Quick test_grow_ratio;
    Alcotest.test_case "grow at ps extremes" `Quick test_grow_extremes;
    Alcotest.test_case "join rejects occupied host" `Quick test_join_occupied_host;
    Alcotest.test_case "join rejects bad host" `Quick test_join_bad_host;
    Alcotest.test_case "join latency recorded" `Quick test_join_latency_recorded;
    Alcotest.test_case "insert/lookup roundtrip" `Quick test_insert_lookup_roundtrip;
    Alcotest.test_case "absent key times out" `Quick test_lookup_absent_times_out;
    Alcotest.test_case "local lookups are cheap" `Quick test_lookup_own_item_is_fast;
    Alcotest.test_case "placement A concentrates on t-peers" `Quick
      test_placement_scheme_a_concentrates;
    Alcotest.test_case "placement B spreads" `Quick test_placement_scheme_b_spreads;
    Alcotest.test_case "graceful leave keeps data" `Quick test_graceful_leave_keeps_data;
    Alcotest.test_case "t-peer leave promotes s-peer" `Quick test_t_peer_leave_promotes;
    Alcotest.test_case "last t-peer can leave" `Quick test_last_t_peer_leave;
    Alcotest.test_case "crash storm + repair" `Quick test_crash_repair_storm;
    Alcotest.test_case "all t-peers crash" `Quick test_crash_all_t_peers;
    Alcotest.test_case "lookups after crash match survivors" `Quick
      test_surviving_lookups_after_crash;
    Alcotest.test_case "heartbeats: s-peer crash recovery" `Quick
      test_heartbeat_detects_spier_crash;
    Alcotest.test_case "heartbeats: t-peer crash recovery" `Quick
      test_heartbeat_detects_tpeer_crash;
    Alcotest.test_case "BitTorrent-style s-networks" `Quick test_bittorrent_mode;
    Alcotest.test_case "bypass links install" `Quick test_bypass_links_accelerate;
    Alcotest.test_case "interest-based s-networks" `Quick test_interest_policy_groups;
    Alcotest.test_case "delta respected" `Quick test_delta_respected_under_load;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
