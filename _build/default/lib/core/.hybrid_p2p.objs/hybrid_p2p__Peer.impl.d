lib/core/peer.ml: Cache Config Data_store Format Hashtbl Id_space List P2p_hashspace P2p_sim
