lib/chord/ring.mli: Id_space P2p_hashspace
