(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                     # every table and figure, small scale
     dune exec bench/main.exe -- fig5a            # one experiment
     dune exec bench/main.exe -- all --paper      # full 1000-peer paper scale
     dune exec bench/main.exe -- bechamel         # Bechamel micro-benchmarks
     dune exec bench/main.exe -- fig4 --metrics-dir out/   # dump registries as JSON

   Experiments: fig3a fig3b fig3-sim fig4 fig5a fig5b durability fig6a fig6b
                table2 ablate-delta ablate-fingers ablate-bypass ablate-bt
                ablate-cache stress churn-live lookup-perf *)

open Experiments

let usage () =
  print_endline
    "usage: main.exe [all|fig3a|fig3b|fig3-sim|fig4|fig5a|fig5b|durability|fig6a|\n\
    \                 fig6b|table2|ablate-delta|ablate-fingers|ablate-bypass|\n\
    \                 ablate-bt|ablate-cache|stress|lookup-perf|scale|hotpath|\n\
    \                 bechamel]\n\
    \                [--paper] [--metrics-dir DIR] [--audit] [--smoke]\n\
    \                [--slo 'lookup:p99<=40']..."

(* --- Bechamel micro-benchmarks: one per experiment kernel plus the hot
   core operations. --- *)

let bechamel_tests () =
  let open Bechamel in
  (* prebuilt small systems reused across iterations; lookups and inserts
     mutate only metrics/state that does not change their own cost class *)
  let b_mid = build ~seed:21 ~ps:0.5 ~scale:small_scale () in
  insert_corpus b_mid;
  let live = Array.of_list (H.peers b_mid.h) in
  let counter = ref 0 in
  let lookup_once () =
    incr counter;
    let item = b_mid.items.(!counter mod Array.length b_mid.items) in
    let from = live.(!counter mod Array.length live) in
    H.lookup b_mid.h ~from ~key:item.Keys.key ~on_result:(fun _ -> ()) ();
    H.run b_mid.h
  in
  let insert_once () =
    incr counter;
    let from = live.(!counter mod Array.length live) in
    H.insert b_mid.h ~from ~key:(Printf.sprintf "bench-%d" !counter) ~value:"v" ();
    H.run b_mid.h
  in
  let rng = Rng.create 5 in
  let graph_routing =
    let topo = P2p_topology.Transit_stub.generate ~rng:(Rng.create 9) small_scale.topology in
    topo.P2p_topology.Transit_stub.graph
  in
  let fig3_series () =
    List.iter
      (fun ps ->
        ignore (P2p_analysis.Formulas.join_latency ~ps ~n:1000 ~delta:2 : float);
        ignore (P2p_analysis.Formulas.lookup_latency ~ps ~n:1000 ~delta:2 ~ttl:4 : float))
      ps_sweep
  in
  let event_queue_churn () =
    let q = P2p_sim.Event_queue.create () in
    for i = 1 to 1000 do
      ignore
        (P2p_sim.Event_queue.add q ~time:(float_of_int (i * 7919 mod 1000)) ()
          : P2p_sim.Event_queue.handle)
    done;
    while not (P2p_sim.Event_queue.is_empty q) do
      ignore (P2p_sim.Event_queue.pop q : (float * unit) option)
    done
  in
  let dijkstra_sssp () =
    (* fresh router so the cache does not absorb the work *)
    let r = P2p_topology.Routing.create graph_routing in
    ignore (P2p_topology.Routing.distance r 0 1 : float)
  in
  [
    Test.make ~name:"fig3-analytic-series" (Staged.stage fig3_series);
    Test.make ~name:"hybrid-lookup (ps=0.5)" (Staged.stage lookup_once);
    Test.make ~name:"hybrid-insert (ps=0.5)" (Staged.stage insert_once);
    Test.make ~name:"event-queue-1k-churn" (Staged.stage event_queue_churn);
    Test.make ~name:"dijkstra-sssp-384" (Staged.stage dijkstra_sssp);
    Test.make ~name:"rng-int" (Staged.stage (fun () -> ignore (Rng.int rng 1000 : int)));
    Test.make ~name:"key-hash"
      (Staged.stage (fun () ->
           ignore (P2p_hashspace.Key_hash.of_string "some-file-name.mp3" : int)));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  header "Bechamel micro-benchmarks";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      List.iter
        (fun basic ->
          let raw = Benchmark.run cfg [ instance ] basic in
          let result = Analyze.one ols instance raw in
          match Analyze.OLS.estimates result with
          | Some [ estimate ] ->
            row "%-28s %12.1f ns/run\n%!" (Test.Elt.name basic) estimate
          | Some _ | None -> row "%-28s (no estimate)\n%!" (Test.Elt.name basic))
        (Test.elements test))
    (bechamel_tests ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let paper = List.mem "--paper" args in
  let smoke = List.mem "--smoke" args in
  let scale = if paper then paper_scale else small_scale in
  audit_enabled := List.mem "--audit" args;
  (* consume "--metrics-dir DIR" and "--slo SPEC" (repeatable) before
     picking the command *)
  let rec extract_options = function
    | "--metrics-dir" :: dir :: rest ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      metrics_dir := Some dir;
      extract_options rest
    | "--slo" :: spec :: rest ->
      slo_specs := !slo_specs @ [ spec ];
      extract_options rest
    | a :: rest -> a :: extract_options rest
    | [] -> []
  in
  let commands =
    extract_options
      (List.filter (fun a -> a <> "--paper" && a <> "--audit" && a <> "--smoke") args)
  in
  let command = match commands with [] -> "all" | c :: _ -> c in
  Printf.printf "scale: %s\n%!" scale.label;
  let all () =
    Fig3.fig3a ();
    Fig3.fig3b ();
    Fig3.fig3_sim ~scale ();
    Fig4.run ~scale ();
    Fig5.fig5a ~scale ();
    Fig5.fig5b ~scale ();
    Fig5.durability ~scale ();
    Fig6.fig6a ~scale ();
    Fig6.fig6b ~scale ();
    Table2.run ~scale ();
    Ablations.ablate_delta ~scale ();
    Ablations.ablate_fingers ~scale ();
    Ablations.ablate_bypass ~scale ();
    Ablations.ablate_bittorrent ~scale ();
    Ablations.ablate_cache ~scale ();
    Ablations.link_stress ~scale ();
    Ablations.churn_live ();
    Lookup_perf.run ~smoke ~scale ();
    run_bechamel ()
  in
  match command with
  | "all" -> all ()
  | "fig3a" -> Fig3.fig3a ()
  | "fig3b" -> Fig3.fig3b ()
  | "fig3-sim" -> Fig3.fig3_sim ~scale ()
  | "fig4" -> Fig4.run ~scale ()
  | "fig5a" -> Fig5.fig5a ~scale ()
  | "fig5b" -> Fig5.fig5b ~scale ()
  | "durability" -> Fig5.durability ~scale ()
  | "fig6a" -> Fig6.fig6a ~scale ()
  | "fig6b" -> Fig6.fig6b ~scale ()
  | "table2" -> Table2.run ~scale ()
  | "ablate-delta" -> Ablations.ablate_delta ~scale ()
  | "ablate-fingers" -> Ablations.ablate_fingers ~scale ()
  | "ablate-bypass" -> Ablations.ablate_bypass ~scale ()
  | "ablate-bt" -> Ablations.ablate_bittorrent ~scale ()
  | "ablate-cache" -> Ablations.ablate_cache ~scale ()
  | "stress" -> Ablations.link_stress ~scale ()
  | "churn-live" -> Ablations.churn_live ()
  | "lookup-perf" | "lookup_perf" -> Lookup_perf.run ~smoke ~scale ()
  | "scale" -> Scale.run ~smoke ()
  | "hotpath" -> Hotpath.run ~smoke ()
  | "bechamel" -> run_bechamel ()
  | "help" | "--help" | "-h" -> usage ()
  | unknown ->
    Printf.printf "unknown command %S\n" unknown;
    usage ();
    exit 1
