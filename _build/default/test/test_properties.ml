(* Property-based tests (QCheck, registered as alcotest cases).

   These pin down the algebraic laws and structural invariants the
   protocols rely on, over randomized inputs: ring-interval algebra,
   event-queue ordering, summary-statistics bounds, Chord ring invariants
   under random membership churn, and hybrid-system invariants under
   random churn scripts. *)

module Id_space = P2p_hashspace.Id_space
module Event_queue = P2p_sim.Event_queue
module Summary = P2p_stats.Summary
module Histogram = P2p_stats.Histogram
module Ring = P2p_chord.Ring
module Rng = P2p_sim.Rng
module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer

let id_gen = QCheck.Gen.int_bound (Id_space.size - 1)

let id_arb = QCheck.make ~print:string_of_int id_gen

let triple_arb = QCheck.triple id_arb id_arb id_arb

(* --- Id_space algebra --- *)

let prop_between_distance =
  QCheck.Test.make ~name:"between x (l,r) iff 0 < d(l,x) < d(l,r) (l<>r)" ~count:2000
    triple_arb (fun (x, l, r) ->
      QCheck.assume (l <> r);
      let lhs = Id_space.between x ~left:l ~right:r in
      let rhs =
        let dx = Id_space.distance ~src:l ~dst:x in
        let dr = Id_space.distance ~src:l ~dst:r in
        dx > 0 && dx < dr
      in
      lhs = rhs)

let prop_between_incl_right =
  QCheck.Test.make ~name:"between_incl_right = between or x=r" ~count:2000 triple_arb
    (fun (x, l, r) ->
      Id_space.between_incl_right x ~left:l ~right:r
      = (x = r || Id_space.between x ~left:l ~right:r))

let prop_segments_partition =
  (* the half-open segments of a sorted id list partition the whole space *)
  QCheck.Test.make ~name:"ring segments partition the id space" ~count:200
    (QCheck.pair id_arb (QCheck.list_of_size (QCheck.Gen.int_range 1 10) id_arb))
    (fun (x, ids) ->
      let ids = List.sort_uniq compare ids in
      let n = List.length ids in
      QCheck.assume (n >= 1);
      let arr = Array.of_list ids in
      let owners = ref 0 in
      for i = 0 to n - 1 do
        let left = arr.((i + n - 1) mod n) and right = arr.(i) in
        if
          (n = 1 && Id_space.between_incl_right x ~left:right ~right)
          || (n > 1 && Id_space.between_incl_right x ~left ~right)
        then incr owners
      done;
      !owners = 1)

let prop_distance_triangle =
  QCheck.Test.make ~name:"clockwise distances add modulo size" ~count:2000 triple_arb
    (fun (a, b, c) ->
      let ab = Id_space.distance ~src:a ~dst:b in
      let bc = Id_space.distance ~src:b ~dst:c in
      let ac = Id_space.distance ~src:a ~dst:c in
      (ab + bc) mod Id_space.size = ac)

let prop_midpoint_interior =
  QCheck.Test.make ~name:"midpoint lies strictly inside" ~count:2000
    (QCheck.pair id_arb id_arb) (fun (l, r) ->
      match Id_space.midpoint ~left:l ~right:r with
      | Some m -> Id_space.between m ~left:l ~right:r
      | None -> l <> r && Id_space.distance ~src:l ~dst:r <= 1)

(* --- Event queue ordering --- *)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order" ~count:200
    (QCheck.list (QCheck.float_bound_inclusive 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:t () : Event_queue.handle)) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* --- Summary bounds --- *)

let prop_summary_bounds =
  QCheck.Test.make ~name:"mean and percentiles within [min, max]" ~count:500
    (QCheck.list_of_size (QCheck.Gen.int_range 1 50) (QCheck.float_bound_inclusive 1e6))
    (fun xs ->
      let s = Summary.create () in
      Summary.add_all s xs;
      let lo = Summary.min s and hi = Summary.max s in
      Summary.mean s >= lo -. 1e-6
      && Summary.mean s <= hi +. 1e-6
      && Summary.median s >= lo
      && Summary.median s <= hi
      && Summary.percentile s 95.0 >= Summary.median s -. 1e-9)

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram total = sum of counts; rebin preserves" ~count:500
    (QCheck.list (QCheck.int_bound 200))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) xs;
      let sum_assoc = List.fold_left (fun acc (_, c) -> acc + c) 0 (Histogram.to_assoc h) in
      let sum_rebin =
        List.fold_left (fun acc (_, c) -> acc + c) 0 (Histogram.rebin h ~width:7)
      in
      sum_assoc = List.length xs && sum_rebin = List.length xs)

(* --- Chord ring invariants under churn --- *)

let chord_script_gen =
  (* a seed plus a list of churn ops: true = join, false = leave *)
  QCheck.pair QCheck.small_int (QCheck.list_of_size (QCheck.Gen.int_range 1 60) QCheck.bool)

let prop_chord_churn_invariants =
  QCheck.Test.make ~name:"chord invariants after random join/leave script" ~count:50
    chord_script_gen (fun (seed, script) ->
      let rng = Rng.create seed in
      let ring = Ring.create () in
      let live = ref [] in
      let host = ref 0 in
      let used = Hashtbl.create 64 in
      List.iter
        (fun is_join ->
          if is_join || !live = [] then begin
            let rec fresh () =
              let id = Rng.int rng Id_space.size in
              if Hashtbl.mem used id then fresh () else id
            in
            let id = fresh () in
            Hashtbl.add used id ();
            let node, _ = Ring.join ring ~host:!host ~p_id:id in
            incr host;
            live := node :: !live
          end
          else begin
            let victim = Rng.pick_list rng !live in
            live := List.filter (fun n -> n != victim) !live;
            Ring.leave ring victim
          end)
        script;
      match Ring.check_invariants ring with Ok () -> true | Error _ -> false)

let prop_chord_data_conservation =
  QCheck.Test.make ~name:"chord graceful churn conserves data" ~count:30 chord_script_gen
    (fun (seed, script) ->
      let rng = Rng.create seed in
      let ring = Ring.create () in
      let node0, _ = Ring.join ring ~host:999999 ~p_id:0 in
      ignore node0;
      let live = ref [ node0 ] in
      let host = ref 0 in
      let used = Hashtbl.create 64 in
      Hashtbl.add used 0 ();
      for i = 0 to 19 do
        ignore
          (Ring.store ring ~from:(List.hd !live) ~key:(Printf.sprintf "c%d" i) ~value:"v"
            : Ring.node list)
      done;
      List.iter
        (fun is_join ->
          if is_join || List.length !live <= 1 then begin
            let rec fresh () =
              let id = Rng.int rng Id_space.size in
              if Hashtbl.mem used id then fresh () else id
            in
            let id = fresh () in
            Hashtbl.add used id ();
            let node, _ = Ring.join ring ~host:!host ~p_id:id in
            incr host;
            live := node :: !live
          end
          else begin
            let victim = Rng.pick_list rng !live in
            live := List.filter (fun n -> n != victim) !live;
            Ring.leave ring victim
          end)
        script;
      let total =
        List.fold_left (fun acc n -> acc + Ring.stored_items n) 0 (Ring.nodes ring)
      in
      total = 20)

(* --- Hybrid system invariants under churn scripts --- *)

type churn_op = Op_join_t | Op_join_s | Op_leave | Op_crash

let churn_op_gen =
  QCheck.Gen.frequency
    [ (3, QCheck.Gen.return Op_join_t); (5, QCheck.Gen.return Op_join_s);
      (2, QCheck.Gen.return Op_leave); (1, QCheck.Gen.return Op_crash) ]

let churn_script_arb =
  QCheck.make
    ~print:(fun (seed, ops) ->
      Printf.sprintf "seed=%d ops=[%s]" seed
        (String.concat ";"
           (List.map
              (function
                | Op_join_t -> "jt" | Op_join_s -> "js" | Op_leave -> "l" | Op_crash -> "c")
              ops)))
    (QCheck.Gen.pair QCheck.Gen.small_int
       (QCheck.Gen.list_size (QCheck.Gen.int_range 5 40) churn_op_gen))

let prop_hybrid_churn_invariants =
  QCheck.Test.make ~name:"hybrid invariants after random churn script" ~count:25
    churn_script_arb (fun (seed, ops) ->
      let h = H.create_star ~seed ~peers:200 () in
      let next_host = ref 0 in
      let crashed = ref false in
      List.iter
        (fun op ->
          (match op with
           | Op_join_t when !next_host < 200 ->
             ignore (H.join h ~host:!next_host ~role:Peer.T_peer () : Peer.t);
             incr next_host
           | Op_join_s when !next_host < 200 ->
             let role = if H.peer_count h = 0 then Peer.T_peer else Peer.S_peer in
             ignore (H.join h ~host:!next_host ~role () : Peer.t);
             incr next_host
           | Op_join_t | Op_join_s -> ()
           | Op_leave -> if H.peer_count h > 0 then H.leave h (H.random_peer h) ()
           | Op_crash ->
             if H.peer_count h > 1 then begin
               H.crash h (H.random_peer h);
               crashed := true
             end);
          H.run h)
        ops;
      if !crashed then H.repair h;
      H.run h;
      match H.check_invariants h with Ok () -> true | Error _ -> false)

let prop_hybrid_graceful_conserves_data =
  QCheck.Test.make ~name:"hybrid graceful churn conserves data" ~count:15
    (QCheck.pair QCheck.small_int (QCheck.list_of_size (QCheck.Gen.int_range 3 15) QCheck.bool))
    (fun (seed, script) ->
      let h = H.create_star ~seed ~peers:200 () in
      let members = H.grow h ~count:40 ~s_fraction:0.6 in
      ignore members;
      List.iteri
        (fun i key ->
          ignore i;
          H.insert h ~from:(H.random_peer h) ~key ~value:"v" ())
        (List.init 30 (fun i -> Printf.sprintf "pk%d" i));
      H.run h;
      let expected = H.total_items h in
      let next_host = ref 40 in
      List.iter
        (fun is_join ->
          if is_join && !next_host < 200 then begin
            ignore (H.join h ~host:!next_host () : Peer.t);
            incr next_host
          end
          else if H.peer_count h > 1 then H.leave h (H.random_peer h) ();
          H.run h)
        script;
      H.total_items h = expected)

let prop_hybrid_degree_bound =
  QCheck.Test.make ~name:"tree degree never exceeds delta" ~count:10
    (QCheck.pair QCheck.small_int (QCheck.make (QCheck.Gen.int_range 2 6)))
    (fun (seed, delta) ->
      let config = { Hybrid_p2p.Config.default with Hybrid_p2p.Config.delta } in
      let h = H.create_star ~seed ~peers:150 ~config () in
      ignore (H.grow h ~count:100 ~s_fraction:0.85 : Peer.t array);
      List.for_all (fun p -> Peer.tree_degree p <= delta) (H.peers h))

(* pinned randomness: property runs are reproducible across invocations *)
let suite =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      prop_between_distance;
      prop_between_incl_right;
      prop_segments_partition;
      prop_distance_triangle;
      prop_midpoint_interior;
      prop_event_queue_sorted;
      prop_summary_bounds;
      prop_histogram_total;
      prop_chord_churn_invariants;
      prop_chord_data_conservation;
      prop_hybrid_churn_invariants;
      prop_hybrid_graceful_conserves_data;
      prop_hybrid_degree_bound;
    ]
