(** Hashing of data keys and peer addresses into the ID space.

    The paper hashes a data key (e.g. a file name) to an integer [d_id] in
    the same range as [p_id], and optionally derives a joining peer's [p_id]
    from its IP address.  We use FNV-1a (64-bit) folded into the
    {!Id_space} range: deterministic across runs, well-dispersed, and
    dependency-free. *)

(** [of_string key] is the [d_id] of a data key. *)
val of_string : string -> Id_space.id

(** [of_int v] hashes an integer (e.g. a synthetic address). *)
val of_int : int -> Id_space.id

(** [of_address ~ip ~port] hashes a synthetic network address; mirrors the
    paper's "hash the IP address of the new peer" p_id generation. *)
val of_address : ip:string -> port:int -> Id_space.id

(** Raw 64-bit FNV-1a of a string, exposed for testing dispersion. *)
val fnv1a64 : string -> int64
