(* Passive time-series sampler over a metrics registry.

   A periodic engine timer would keep the event queue non-empty forever,
   so the sampler is poll-driven instead: the drain loop calls [poll]
   between engine steps and a snapshot of every counter and gauge is
   taken whenever simulated time has crossed the next due point.  Each
   snapshot is one JSONL line, so a timeline file can be tailed,
   diffed, or plotted without a reader for the whole run. *)

type sample = { at : float; line : Json.t }

type t = {
  interval : float;
  reg : Registry.t;
  on_sample : (unit -> unit) option;
  mutable next_due : float;
  mutable samples : sample list; (* newest first *)
}

let create ~interval ?on_sample reg =
  if interval <= 0.0 then invalid_arg "Sampler.create: interval must be positive";
  { interval; reg; on_sample; next_due = 0.0; samples = [] }

let snapshot t ~now =
  let counters, gauges =
    List.fold_left
      (fun (cs, gs) (b : Registry.binding) ->
        let key = b.Registry.subsystem ^ "/" ^ b.Registry.name in
        match b.Registry.metric with
        | Registry.Counter c -> ((key, Json.Int (Registry.counter_value c)) :: cs, gs)
        | Registry.Gauge g -> (cs, (key, Json.Float (Registry.gauge_value g)) :: gs)
        | Registry.Histogram _ | Registry.Log _ -> (cs, gs))
      ([], []) (Registry.bindings t.reg)
  in
  {
    at = now;
    line =
      Json.Obj
        [
          ("t", Json.Float now);
          ("counters", Json.Obj (List.rev counters));
          ("gauges", Json.Obj (List.rev gauges));
        ];
  }

let poll t ~now =
  if now >= t.next_due then begin
    (* refresh pull-style gauges (GC deltas, lane occupancy) right before
       reading the registry, so the timeline sees current values without
       the hot path paying for them on every event *)
    (match t.on_sample with Some f -> f () | None -> ());
    t.samples <- snapshot t ~now :: t.samples;
    (* re-anchor on the sampled instant: a long quiet stretch yields one
       sample when activity resumes, not a burst of catch-up lines *)
    t.next_due <- now +. t.interval
  end

let count t = List.length t.samples

let samples t = List.rev_map (fun s -> (s.at, s.line)) t.samples

let to_string t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (_, line) ->
      Buffer.add_string buf (Json.to_string line);
      Buffer.add_char buf '\n')
    (samples t);
  Buffer.contents buf
