(* Fig. 5a: lookup failure ratio vs p_s for TTL in {1, 2, 4}.
   Fig. 5b: lookup failure ratio vs crashed fraction for several p_s
   (peers leave abruptly without transferring their data; Section 6.2). *)

open Experiments
module Ascii_plot = P2p_stats.Ascii_plot

let fig5a ~scale () =
  header "Fig 5a — lookup failure ratio vs p_s, TTL in {1, 2, 4}";
  row "%6s  %10s  %10s  %10s\n" "p_s" "TTL=1" "TTL=2" "TTL=4";
  let collected = ref [] in
  List.iter
    (fun ps ->
      let ratios =
        List.map
          (fun ttl ->
            let b = build ~seed:5 ~ps ~scale () in
            insert_corpus b;
            run_lookups ~ttl b ~count:scale.n_lookups;
            Metrics.failure_ratio (H.metrics b.h))
          [ 1; 2; 4 ]
      in
      match ratios with
      | [ r1; r2; r4 ] ->
        collected := (ps, r1, r2, r4) :: !collected;
        row "%6.2f  %10.4f  %10.4f  %10.4f\n%!" ps r1 r2 r4
      | _ -> assert false)
    ps_sweep;
  let points f = List.rev_map (fun (ps, a, b, c) -> (ps, f (a, b, c))) !collected in
  print_string
    (Ascii_plot.line_chart
       ~series:
         [ { Ascii_plot.name = "TTL=1"; points = points (fun (a, _, _) -> a) };
           { Ascii_plot.name = "TTL=2"; points = points (fun (_, b, _) -> b) };
           { Ascii_plot.name = "TTL=4"; points = points (fun (_, _, c) -> c) } ]
       ())

let fig5b ~scale () =
  header "Fig 5b — lookup failure ratio vs crashed fraction (no load transfer)";
  row "%8s  %10s  %10s  %10s\n" "crashed" "p_s=0.4" "p_s=0.6" "p_s=0.8";
  List.iter
    (fun fraction ->
      let ratios =
        List.map
          (fun ps ->
            let b = build ~seed:6 ~ps ~scale () in
            insert_corpus b;
            let victims =
              Churn.crash_storm ~rng:b.rng ~population:(Array.length b.peers) ~fraction
            in
            Array.iter (fun i -> H.crash b.h b.peers.(i)) victims;
            H.repair b.h;
            H.run b.h;
            run_lookups b ~count:scale.n_lookups;
            Metrics.failure_ratio (H.metrics b.h))
          [ 0.4; 0.6; 0.8 ]
      in
      match ratios with
      | [ a; b; c ] -> row "%8.2f  %10.4f  %10.4f  %10.4f\n%!" fraction a b c
      | _ -> assert false)
    [ 0.0; 0.05; 0.1; 0.15; 0.2; 0.25; 0.3 ]
