(* BitTorrent-style s-networks (paper Section 5.5) versus flooding.

   In tracker mode each t-peer indexes every item stored in its s-network;
   lookups ask the tracker directly and fetch from the holder — no
   flooding, no TTL misses.  This example runs the same workload under
   both styles and compares contacted-peer counts (connum) and failure
   ratios.

   Run with: dune exec examples/tracker_mode.exe *)

module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Metrics = P2p_net.Metrics
module Summary = P2p_stats.Summary

let run ~style ~label =
  let config = { Config.default with Config.s_style = style; default_ttl = 2 } in
  let h = H.create_star ~seed:31 ~peers:256 ~config () in
  ignore (H.grow h ~count:150 ~s_fraction:0.85 : Peer.t array);
  for i = 0 to 399 do
    H.insert h ~from:(H.random_peer h) ~key:(Printf.sprintf "chunk-%04d" i) ~value:"v" ()
  done;
  H.run h;
  let before_connum = Metrics.connum (H.metrics h) in
  let ok = ref 0 and missed = ref 0 in
  for i = 0 to 399 do
    H.lookup h ~from:(H.random_peer h) ~key:(Printf.sprintf "chunk-%04d" i)
      ~on_result:(function
        | Data_ops.Found _ -> incr ok
        | Data_ops.Timed_out -> incr missed)
      ()
  done;
  H.run h;
  let m = H.metrics h in
  Printf.printf
    "%-18s found %3d / 400   failure %5.1f%%   contacts/lookup %5.1f   mean latency %6.1f ms\n"
    label !ok
    (100.0 *. float_of_int !missed /. 400.0)
    (float_of_int (Metrics.connum m - before_connum) /. 400.0)
    (Summary.mean (Metrics.lookup_latency m))

let () =
  print_endline
    "150 peers at p_s = 0.85, 400 items, 400 lookups, flood TTL 2 (deliberately tight):\n";
  run ~style:Config.Flooding_tree ~label:"Gnutella-style";
  run ~style:Config.Bittorrent_tracker ~label:"BitTorrent-style";
  print_endline
    "\nThe tracker never misses and contacts ~1 peer per lookup inside the\n\
     s-network, at the price of centralizing index state on the t-peer\n\
     (the paper's Section 5.5 trade-off)."
