(** Versioned per-process observability snapshots and their cluster
    merge.

    One {!snapshot} is what a live node returns to a scrape: liveness
    and ring-position health plus its full {!Registry} export, and
    optionally the chrome span events its trace retains.  The
    aggregator parses snapshots back and merges them: counters sum,
    gauges keep the cluster maximum, {!Log_hist} latency histograms
    merge bucketwise — so a cluster p99 is computed on the merged
    distribution, never averaged across nodes.  Summary-backed plain
    histograms cannot be rebuilt from their export bins and are skipped
    by the merge (they remain visible per node). *)

(** Bumped when the snapshot schema changes; {!of_string} rejects
    versions it does not know. *)
val snapshot_version : int

type snapshot = {
  node : int;
  at : float;  (** snapshot time, ms on the cluster-shared epoch *)
  uptime_ms : float;
  ready : bool;
  p_id : int;
  succ : int;
  pred : int;
  store : int;
  violations : int;
  metrics : Json.t;  (** {!Registry.to_json} document *)
  trace : Json.t list;  (** chrome span events; [[]] unless requested *)
}

val to_json : snapshot -> Json.t
val to_string : snapshot -> string

val of_json : Json.t -> (snapshot, string) result
val of_string : string -> (snapshot, string) result

(** [merge_metrics_into reg metrics] folds one {!Registry.to_json}
    document into [reg] (counters add, gauges [set_max], log histograms
    bucket-merge).  Malformed or shape-conflicting fields are skipped —
    one half-broken peer must not poison the cluster view. *)
val merge_metrics_into : Registry.t -> Json.t -> unit

(** One registry holding every snapshot's metrics merged. *)
val merged_registry : snapshot list -> Registry.t

(** All snapshots' span events pooled into one chrome trace-event array
    (JSON), per-node [ph:"M"] metadata replaced by a single re-derived
    process-name set — load it in ui.perfetto.dev to see one track per
    process with cross-process span trees intact. *)
val merged_chrome : snapshot list -> Json.t

(** A fixed-width per-node table plus a cluster summary line — the body
    [p2psim top] refreshes. *)
val render_table : snapshot list -> string
