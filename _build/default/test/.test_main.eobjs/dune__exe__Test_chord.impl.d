test/test_chord.ml: Alcotest Array Hashtbl List P2p_chord P2p_hashspace P2p_sim Printf
