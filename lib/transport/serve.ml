(* [p2psim serve]: fork N worker processes, each running one
   {!Live_node} of a live localhost ring, and drive them from the parent
   acting as the client (node index N on the same transport fabric).

   The parent waits for every worker to report [ready] via
   [Status_request]/[Status] polling, then — in smoke mode — pushes a
   fixed insert/lookup workload through round-robin entry nodes,
   computes recall, shuts the ring down with [Shutdown] frames, reaps
   the children and scans their JSONL health dumps for audit violations
   and decode errors.  Exit code 0 means the ring formed, recall was
   1.0 and the dumps are clean; anything else is 1.

   Without [--smoke] the ring is left serving until the parent receives
   SIGINT/SIGTERM, which triggers the same clean shutdown. *)

module Json = P2p_obs.Json

type outcome = {
  ready_nodes : int;
  inserts_ok : int;
  lookups_found : int;
  lookups_total : int;
  recall : float;
  violations : int;
  decode_errors : int;
  exit_code : int;
}

let mkdir_p dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ())

(* --- child ----------------------------------------------------------- *)

let run_child ~node ~n ~port_base ~dump_dir =
  let t = Live_node.create ~dump_dir ~node ~n ~port_base () in
  Live_node.run t;
  exit 0

(* --- parent: client over the live fabric ----------------------------- *)

type client = {
  tr : Live_transport.t;
  replies : (int, Wire.msg) Hashtbl.t;
  statuses : (int, Wire.msg) Hashtbl.t;
}

let make_client ~n ~port_base =
  let tr = Live_transport.create ~self:n () in
  for peer = 0 to n do
    Live_transport.set_peer_addr tr peer
      (Unix.ADDR_INET (Unix.inet_addr_loopback, port_base + peer))
  done;
  Live_transport.listen tr
    (Unix.ADDR_INET (Unix.inet_addr_loopback, port_base + n));
  let c = { tr; replies = Hashtbl.create 1024; statuses = Hashtbl.create 64 } in
  Live_transport.set_handler tr (fun ~src:_ ~dst:_ msg ->
      match msg with
      | Wire.Client_reply { req; _ } -> Hashtbl.replace c.replies req msg
      | Wire.Status { node; _ } -> Hashtbl.replace c.statuses node msg
      | _ -> ());
  c

(* Step the client loop until [done_ ()] or the wall-clock deadline. *)
let pump c ~seconds done_ =
  let deadline = Unix.gettimeofday () +. seconds in
  let finished = ref (done_ ()) in
  while (not !finished) && Unix.gettimeofday () < deadline do
    ignore (Live_transport.step ~timeout:0.02 c.tr);
    finished := done_ ()
  done;
  !finished

let wait_ready c ~n ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let req = ref 0 in
  let all_ready () =
    let count = ref 0 in
    Hashtbl.iter
      (fun _ msg ->
        match msg with Wire.Status { ready = true; _ } -> incr count | _ -> ())
      c.statuses;
    !count = n
  in
  let ready = ref (all_ready ()) in
  while (not !ready) && Unix.gettimeofday () < deadline do
    for node = 0 to n - 1 do
      incr req;
      Live_transport.send c.tr ~src:n ~dst:node
        (Wire.Status_request { req = !req })
    done;
    ignore (pump c ~seconds:0.25 all_ready);
    ready := all_ready ()
  done;
  let count = ref 0 in
  Hashtbl.iter
    (fun _ msg ->
      match msg with Wire.Status { ready = true; _ } -> incr count | _ -> ())
    c.statuses;
  (!ready, !count)

(* --- health-dump scan ------------------------------------------------ *)

let scan_dumps ~dump_dir ~n =
  let violations = ref 0 and decode_errors = ref 0 in
  for node = 0 to n - 1 do
    let path = Filename.concat dump_dir (Printf.sprintf "health-%d.jsonl" node) in
    if Sys.file_exists path then begin
      let ic = open_in path in
      let last = ref None in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then last := Some line
         done
       with End_of_file -> ());
      close_in ic;
      match !last with
      | None -> ()
      | Some line -> (
        match Json.parse line with
        | Error _ -> incr decode_errors
        | Ok v ->
          let field name =
            Option.value ~default:0
              (Option.bind (Json.member name v) Json.to_int)
          in
          violations := !violations + field "violations";
          decode_errors := !decode_errors + field "decode_errors")
    end
  done;
  (!violations, !decode_errors)

(* --- orchestration --------------------------------------------------- *)

let kill_children pids =
  List.iter (fun pid -> try Unix.kill pid Sys.sigkill with _ -> ()) pids

let reap pids ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec wait_one pid =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () < deadline then begin
        ignore (Unix.select [] [] [] 0.02);
        wait_one pid
      end
      else begin
        (try Unix.kill pid Sys.sigkill with _ -> ());
        ignore (Unix.waitpid [] pid)
      end
    | _ -> ()
    | exception Unix.Unix_error (ECHILD, _, _) -> ()
  in
  List.iter wait_one pids

let shutdown_ring c ~n =
  for node = 0 to n - 1 do
    Live_transport.send c.tr ~src:n ~dst:node Wire.Shutdown
  done;
  (* Let the shutdown frames flush. *)
  ignore (pump c ~seconds:1.0 (fun () -> false))

let smoke_workload c ~n ~inserts ~lookups =
  let key i = Printf.sprintf "live-key-%04d" i in
  for i = 1 to inserts do
    Live_transport.send c.tr ~src:n ~dst:((i - 1) mod n)
      (Wire.Client_insert { req = i; key = key i; value = Printf.sprintf "v%d" i })
  done;
  let inserts_done () =
    let ok = ref 0 in
    for i = 1 to inserts do
      if Hashtbl.mem c.replies i then incr ok
    done;
    !ok = inserts
  in
  let _ = pump c ~seconds:30. inserts_done in
  let inserts_ok = ref 0 in
  for i = 1 to inserts do
    match Hashtbl.find_opt c.replies i with
    | Some (Wire.Client_reply { found = true; _ }) -> incr inserts_ok
    | _ -> ()
  done;
  let base = 1_000_000 in
  for j = 1 to lookups do
    let target = ((j * 7) mod inserts) + 1 in
    Live_transport.send c.tr ~src:n ~dst:((j - 1) mod n)
      (Wire.Client_lookup { req = base + j; key = key target })
  done;
  let lookups_done () =
    let ok = ref 0 in
    for j = 1 to lookups do
      if Hashtbl.mem c.replies (base + j) then incr ok
    done;
    !ok = lookups
  in
  let _ = pump c ~seconds:30. lookups_done in
  let found = ref 0 in
  for j = 1 to lookups do
    match Hashtbl.find_opt c.replies (base + j) with
    | Some (Wire.Client_reply { found = true; _ }) -> incr found
    | _ -> ()
  done;
  (!inserts_ok, !found)

let run ?(inserts = 200) ?(lookups = 500) ?(ready_timeout = 30.)
    ?(dump_dir = "_serve_health") ~peers:n ~port_base ~smoke () =
  (* The live loop selects with [Unix.select], whose fd_set caps out at
     FD_SETSIZE (typically 1024).  The tracker node and the parent
     client both talk to every peer, so rings past a few hundred peers
     exceed it; warn rather than corrupt fd_sets silently. *)
  if n > 400 then
    Printf.eprintf
      "serve: warning: %d peers approaches the select() FD_SETSIZE limit \
       (1024 fds); rings this size need a poll/epoll loop (see SCALING.md)\n%!"
      n;
  mkdir_p dump_dir;
  let pids =
    List.init n (fun node ->
        match Unix.fork () with
        | 0 ->
          (* Child: run the node; never returns. *)
          (try run_child ~node ~n ~port_base ~dump_dir
           with e ->
             Printf.eprintf "node %d died: %s\n%!" node (Printexc.to_string e);
             exit 2)
        | pid -> pid)
  in
  let c = make_client ~n ~port_base in
  let finish ~ready_nodes ~inserts_ok ~lookups_found ~lookups_total =
    shutdown_ring c ~n;
    Live_transport.stop c.tr;
    reap pids ~seconds:5.;
    let violations, decode_errors = scan_dumps ~dump_dir ~n in
    let recall =
      if lookups_total = 0 then 0.
      else float_of_int lookups_found /. float_of_int lookups_total
    in
    let exit_code =
      if
        ready_nodes = n
        && inserts_ok = inserts
        && lookups_total > 0
        && lookups_found = lookups_total
        && violations = 0
        && decode_errors = 0
      then 0
      else 1
    in
    {
      ready_nodes;
      inserts_ok;
      lookups_found;
      lookups_total;
      recall;
      violations;
      decode_errors;
      exit_code;
    }
  in
  let all_ready, ready_nodes = wait_ready c ~n ~seconds:ready_timeout in
  if not all_ready then begin
    Printf.eprintf "serve: only %d/%d nodes ready after %.0fs\n%!" ready_nodes
      n ready_timeout;
    let o = finish ~ready_nodes ~inserts_ok:0 ~lookups_found:0 ~lookups_total:0 in
    kill_children pids;
    { o with exit_code = 1 }
  end
  else if smoke then begin
    Printf.printf "serve: ring of %d nodes ready on ports %d-%d\n%!" n
      port_base (port_base + n - 1);
    let inserts_ok, lookups_found = smoke_workload c ~n ~inserts ~lookups in
    finish ~ready_nodes ~inserts_ok ~lookups_found ~lookups_total:lookups
  end
  else begin
    Printf.printf
      "serve: ring of %d nodes ready on ports %d-%d (Ctrl-C to stop)\n%!" n
      port_base (port_base + n - 1);
    let stop = ref false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
    while not !stop do
      ignore (Live_transport.step ~timeout:0.2 c.tr)
    done;
    let o = finish ~ready_nodes ~inserts_ok:0 ~lookups_found:0 ~lookups_total:0 in
    (* Without a smoke workload, success means the ring formed and the
       dumps are clean. *)
    {
      o with
      exit_code =
        (if ready_nodes = n && o.violations = 0 && o.decode_errors = 0 then 0
         else 1);
    }
  end

let print_outcome o =
  Printf.printf
    "serve: ready=%d inserts_ok=%d lookups=%d/%d recall=%.3f violations=%d \
     decode_errors=%d -> %s\n%!"
    o.ready_nodes o.inserts_ok o.lookups_found o.lookups_total o.recall
    o.violations o.decode_errors
    (if o.exit_code = 0 then "PASS" else "FAIL")
