module H = Hybrid_p2p.Hybrid
module Peer = Hybrid_p2p.Peer
module Config = Hybrid_p2p.Config
module Data_ops = Hybrid_p2p.Data_ops
module Manager = P2p_replication.Manager
module Rng = P2p_sim.Rng
module Churn = P2p_workload.Churn

type action =
  | Join_t
  | Join_s
  | Join_many of int * float
  | Leave_random
  | Crash_random
  | Crash_fraction of float
  | Repair
  | Insert_items of int
  | Lookup_items of int
  | Settle
  | Advance of float
  | Anti_entropy of float

type audit_summary = {
  audit_ticks : int;
  audit_violations : int;
  audit_errors : int;
  timeline : (float * int) list;
}

type report = {
  joined : int;
  left : int;
  crashed : int;
  inserted : int;
  lookups_ok : int;
  lookups_failed : int;
  final_peers : int;
  final_items : int;
  invariants : (unit, string) result;
  audit : audit_summary option;
}

type state = {
  h : H.t;
  rng : Rng.t;
  auditor : P2p_audit.Auditor.t option;
  replication : Manager.t option;
  mutable keys : string list; (* inserted keys, newest first *)
  mutable key_count : int;
  mutable joined : int;
  mutable left : int;
  mutable crashed : int;
  mutable inserted : int;
  mutable lookups_ok : int;
  mutable lookups_failed : int;
  mutable needs_repair : bool;
}

(* Drive to quiescence; with auditing on, the drain passes through the
   auditor so ticks land at their due times inside the drain. *)
let drain st =
  match st.auditor with
  | None -> H.run st.h
  | Some a -> P2p_audit.Auditor.settle a

let join_one st ~role =
  let host = H.fresh_host st.h in
  let role = if H.peer_count st.h = 0 then Peer.T_peer else role in
  ignore (H.join st.h ~host ~role () : Peer.t);
  drain st;
  st.joined <- st.joined + 1

let random_live st =
  match H.peers st.h with
  | [] -> None
  | all -> Some (Rng.pick_list st.rng all)

let insert_items st count =
  for _ = 1 to count do
    match random_live st with
    | None -> ()
    | Some from ->
      let key = Printf.sprintf "scenario-%06d" st.key_count in
      st.key_count <- st.key_count + 1;
      st.keys <- key :: st.keys;
      st.inserted <- st.inserted + 1;
      H.insert st.h ~from ~key ~value:("v:" ^ key) ()
  done;
  drain st

let lookup_items st count =
  let pool = Array.of_list st.keys in
  for _ = 1 to count do
    if Array.length pool = 0 then st.lookups_failed <- st.lookups_failed + 1
    else
      match random_live st with
      | None -> st.lookups_failed <- st.lookups_failed + 1
      | Some from ->
        let key = Rng.pick st.rng pool in
        H.lookup st.h ~from ~key
          ~on_result:(function
            | Data_ops.Found _ -> st.lookups_ok <- st.lookups_ok + 1
            | Data_ops.Timed_out -> st.lookups_failed <- st.lookups_failed + 1)
          ()
  done;
  drain st

let crash_fraction st fraction =
  let peers = Array.of_list (H.peers st.h) in
  let victims =
    Churn.crash_storm ~rng:st.rng ~population:(Array.length peers) ~fraction
  in
  Array.iter
    (fun i ->
      H.crash st.h peers.(i);
      st.crashed <- st.crashed + 1)
    victims;
  if Array.length victims > 0 then st.needs_repair <- true

let step st = function
  | Join_t -> join_one st ~role:Peer.T_peer
  | Join_s -> join_one st ~role:Peer.S_peer
  | Join_many (count, s_fraction) ->
    for _ = 1 to count do
      let role =
        if Rng.bernoulli st.rng s_fraction then Peer.S_peer else Peer.T_peer
      in
      join_one st ~role
    done
  | Leave_random ->
    (match random_live st with
     | None -> ()
     | Some victim ->
       H.leave st.h victim ();
       drain st;
       st.left <- st.left + 1)
  | Crash_random ->
    (match random_live st with
     | None -> ()
     | Some victim ->
       H.crash st.h victim;
       st.crashed <- st.crashed + 1;
       st.needs_repair <- true)
  | Crash_fraction fraction -> crash_fraction st fraction
  | Repair ->
    H.repair st.h;
    drain st;
    st.needs_repair <- false
  | Insert_items count -> insert_items st count
  | Lookup_items count -> lookup_items st count
  | Settle -> drain st
  | Advance ms ->
    (match st.auditor with
     | None -> H.run_for st.h ms
     | Some a -> P2p_audit.Auditor.advance a ~ms)
  | Anti_entropy ms ->
    (match st.replication with
     | None -> ()
     | Some m ->
       (* the periodic timer keeps the queue non-empty, so bracket it
          around a bounded advance rather than a drain *)
       Manager.start m;
       (match st.auditor with
        | None -> H.run_for st.h ms
        | Some a -> P2p_audit.Auditor.advance a ~ms);
       Manager.stop m;
       drain st)

let run ?audit_interval ?audit_checks h ~seed ~script =
  let auditor =
    match audit_interval with
    | None -> None
    | Some interval ->
      Some
        (P2p_audit.Auditor.create ~interval ?checks:audit_checks (H.world h))
  in
  let replication =
    if (H.config h).Config.replication_factor > 0 then Some (Manager.install (H.world h))
    else None
  in
  let st =
    {
      h;
      rng = Rng.create seed;
      auditor;
      replication;
      keys = [];
      key_count = 0;
      joined = 0;
      left = 0;
      crashed = 0;
      inserted = 0;
      lookups_ok = 0;
      lookups_failed = 0;
      needs_repair = false;
    }
  in
  List.iter (step st) script;
  (* the invariant check presumes crash damage was repaired; do it
     implicitly so every script ends in a checkable state *)
  if st.needs_repair then begin
    H.repair st.h;
    H.run st.h
  end;
  let invariants, audit =
    match auditor with
    | None -> (H.check_invariants h, None)
    | Some a ->
      (* close with a tick at the final (repaired, drained) state so the
         reported invariants describe where the run ended *)
      let final = P2p_audit.Auditor.tick a in
      let summary =
        {
          audit_ticks = P2p_audit.Auditor.ticks a;
          audit_violations = P2p_audit.Auditor.violations_total a;
          audit_errors = P2p_audit.Auditor.errors_total a;
          timeline = P2p_audit.Auditor.timeline a;
        }
      in
      (P2p_audit.Checks.to_result final, Some summary)
  in
  {
    joined = st.joined;
    left = st.left;
    crashed = st.crashed;
    inserted = st.inserted;
    lookups_ok = st.lookups_ok;
    lookups_failed = st.lookups_failed;
    final_peers = H.peer_count st.h;
    final_items = H.total_items st.h;
    invariants;
    audit;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>joined %d, left %d, crashed %d@,inserted %d items@,lookups: %d ok, %d failed@,final: %d peers, %d items@,invariants: %s@]"
    r.joined r.left r.crashed r.inserted r.lookups_ok r.lookups_failed r.final_peers
    r.final_items
    (match r.invariants with Ok () -> "OK" | Error e -> "VIOLATED: " ^ e);
  match r.audit with
  | None -> ()
  | Some a ->
    Format.fprintf ppf "@,audit: %d ticks, %d violations (%d errors)" a.audit_ticks
      a.audit_violations a.audit_errors
