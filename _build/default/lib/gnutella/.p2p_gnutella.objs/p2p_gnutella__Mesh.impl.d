lib/gnutella/mesh.ml: Array Hashtbl List P2p_sim
