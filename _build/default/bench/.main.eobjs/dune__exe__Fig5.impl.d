bench/fig5.ml: Array Churn Experiments H List Metrics P2p_stats
