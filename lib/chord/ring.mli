(** Chord-style structured overlay — the paper's structured baseline.

    When the hybrid system's parameter [p_s] is 0 it "degenerates to a
    ring-based structured peer-to-peer network"; this library is that
    endpoint as a standalone overlay: a ring ordered by peer ID with
    successor/predecessor pointers, finger tables for O(log N) routing, a
    successor list for fault tolerance, key storage at the owning node, and
    a stabilization pass.

    The overlay is a pure algorithmic structure: routing operations return
    the *path* of nodes visited, and callers map paths to simulated
    latencies through whatever underlay they use.  This keeps the baseline
    reusable both for direct unit testing and inside event-driven
    experiments. *)

open P2p_hashspace

type t

type node

(** {1 Construction and membership} *)

(** [create ()] makes an empty ring.  [successor_list_length] (default 8,
    >= 1) sizes the per-node successor list used to survive crashed
    successors until the next {!stabilize}; benches ablate it via
    [Config.successor_list_length].  When [trace] is given, every routed
    operation ({!join}, {!store}, {!lookup}) is replayed into it as a
    [Custom] op with one "ring_hop" span per path edge, timed on an
    internal logical clock (1 ms per hop) — the overlay itself stays
    synchronous.
    @raise Invalid_argument when [successor_list_length < 1]. *)
val create : ?trace:P2p_sim.Trace.t -> ?successor_list_length:int -> unit -> t

(** Configured successor-list length of this ring. *)
val successor_list_length : t -> int

(** Number of live nodes. *)
val node_count : t -> int

(** All live nodes, in arbitrary order. *)
val nodes : t -> node list

(** [join ?introducer t ~host ~p_id] inserts a node via [introducer]
    (default: the oldest live node).  The join request is routed from the
    introducer (ring order walk accelerated by fingers), exactly
    as a real join would travel; the returned path excludes the new node.
    Keys owned by the new node migrate from its successor.
    @raise Invalid_argument if [p_id] is already taken or invalid. *)
val join : ?introducer:node -> t -> host:int -> p_id:Id_space.id -> node * node list

(** [leave t node] removes a node gracefully: its keys are transferred to
    its successor and its neighbours' pointers are repaired.
    @raise Invalid_argument if the node already left. *)
val leave : t -> node -> unit

(** [crash t node] removes a node abruptly: its keys are LOST and no
    pointers are repaired; other nodes discover the failure lazily through
    their successor lists during {!stabilize}. *)
val crash : t -> node -> unit

(** {1 Node accessors} *)

val host : node -> int
val p_id : node -> Id_space.id
val successor : node -> node
val predecessor : node -> node option
val alive : node -> bool

(** The finger table: entry [k] targets the first node at distance
    [>= 2^k]. *)
val fingers : node -> node option array

(** {1 Routing and data} *)

(** [find_successor t ~from id] routes from [from] to the node owning [id],
    returning [(owner, path)] where [path] starts at [from] and ends at the
    owner. *)
val find_successor : t -> from:node -> Id_space.id -> node * node list

(** [store t ~from ~key ~value] places the item at the owner of
    [Key_hash.of_string key] and returns the routing path. *)
val store : t -> from:node -> key:string -> value:string -> node list

(** [lookup t ~from ~key] routes to the owner and returns
    [(value_if_present, path)]. *)
val lookup : t -> from:node -> key:string -> string option * node list

(** Number of items stored at [node]. *)
val stored_items : node -> int

(** {1 Maintenance} *)

(** [stabilize t] runs one round of the stabilization protocol on every
    live node: successor repair via successor lists, predecessor
    rectification, and finger refresh.  Call repeatedly after crashes. *)
val stabilize : t -> unit

(** [check_invariants t] verifies ring order, pointer symmetry and finger
    correctness; returns [Error reason] on the first violation. *)
val check_invariants : t -> (unit, string) result
