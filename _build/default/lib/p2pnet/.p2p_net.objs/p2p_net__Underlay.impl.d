lib/p2pnet/underlay.ml: Metrics P2p_sim P2p_topology
