(** Churn schedules: timed sequences of join / graceful-leave / crash
    events.

    Deployed P2P systems see constant membership turnover (the paper cites
    the measurement studies [21], [22]); the hybrid design's whole point is
    tolerating it cheaply.  This module generates Poisson churn processes
    and crash storms to drive the failure experiments (Fig. 5b) and the
    churn-resilience example. *)

type event_kind = Join | Leave | Crash

type event = { time : float; kind : event_kind }

(** [poisson ~rng ~duration ~join_rate ~leave_rate ~crash_rate] generates
    events on [\[0, duration)] from three independent Poisson processes
    (rates in events per unit time), merged in time order.
    @raise Invalid_argument on negative rates or duration. *)
val poisson :
  rng:P2p_sim.Rng.t ->
  duration:float ->
  join_rate:float ->
  leave_rate:float ->
  crash_rate:float ->
  event list

(** [crash_storm ~rng ~population ~fraction] picks
    [round (fraction * population)] distinct victims among
    [0 .. population-1] — the paper's Fig. 5b setup where a proportion of
    peers leaves without transferring data.
    @raise Invalid_argument unless [0 <= fraction <= 1]. *)
val crash_storm : rng:P2p_sim.Rng.t -> population:int -> fraction:float -> int array

(** [is_sorted events] checks ascending time order (exposed for tests). *)
val is_sorted : event list -> bool
