(* Fig. 4: probability density functions of the number of data items per
   peer under the two placement schemes (Section 3.4), for
   p_s in {0, 0.4, 0.9}.  Prints the headline quantities the paper quotes
   (fraction of peers with no items, fraction below a threshold, maximum
   per-peer load) and the binned PDF series. *)

open Experiments
module Pdf = P2p_stats.Pdf
module Histogram = P2p_stats.Histogram

let run_one ~scale ~placement ~ps ~label =
  let config = { Config.default with Config.placement } in
  let b = build ~config ~seed:4 ~ps ~scale () in
  insert_corpus b;
  let dist = H.data_distribution b.h in
  let max_load = Pdf.max_load dist in
  row
    "%-22s p_s=%.1f: %4.1f%% of peers hold 0 items, %4.1f%% hold <10, %4.1f%% hold <20, max %d items\n%!"
    label ps
    (100.0 *. Pdf.fraction_zero dist)
    (100.0 *. Pdf.fraction_below dist 10)
    (100.0 *. Pdf.fraction_below dist 20)
    max_load;
  dist

let pdf_series dist =
  let width = Stdlib.max 1 ((Pdf.max_load dist / 25) + 1) in
  Pdf.of_histogram dist ~bin_width:width

let run ~scale () =
  header "Fig 4 — PDF of data items per peer, two placement schemes";
  let subfigures =
    [ ("4a scheme A (t-peer)", Config.Store_at_tpeer, 0.0);
      ("4b scheme A (t-peer)", Config.Store_at_tpeer, 0.4);
      ("4c scheme A (t-peer)", Config.Store_at_tpeer, 0.9);
      ("4d scheme B (spread)", Config.Spread_to_neighbors, 0.0);
      ("4e scheme B (spread)", Config.Spread_to_neighbors, 0.4);
      ("4f scheme B (spread)", Config.Spread_to_neighbors, 0.9) ]
  in
  let dists =
    List.map
      (fun (label, placement, ps) ->
        (label, run_one ~scale ~placement ~ps ~label))
      subfigures
  in
  row "\nBinned PDF series (items-per-peer  density):\n";
  List.iter
    (fun (label, dist) ->
      row "--- Fig %s ---\n" label;
      List.iter
        (fun { Pdf.value; density } ->
          if density > 0.0 then row "%6d  %.4f\n" value density)
        (pdf_series dist))
    dists
