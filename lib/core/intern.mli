(** String interning: dense integer ids for data keys and values.

    At million-peer scale the per-peer stores cannot afford to hold one
    string copy per (peer, item) pair: replication keeps [r + 1] copies of
    every item and Zipf workloads re-insert the same hot keys constantly.
    Interning maps each distinct string to a small dense [int] once, so
    flat int arrays (see {!Data_store}) replace string-keyed hashtables on
    every per-peer hot path, and all copies of a key or value across the
    whole world share one heap block.

    Ids are dense ([0 .. count - 1]) in first-intern order.  They are only
    meaningful relative to the interner that produced them; the world owns
    one interner shared by every peer's stores. *)

type t

(** [create ?initial_capacity ()] — an empty interner. *)
val create : ?initial_capacity:int -> unit -> t

(** Number of distinct strings interned so far. *)
val count : t -> int

(** [intern t s] is the id of [s], allocating the next dense id on first
    sight.  O(1) amortized. *)
val intern : t -> string -> int

(** [find t s] is [s]'s id if it was ever interned — a read-only probe
    that never grows the table (lookups of unknown keys must not leak). *)
val find : t -> string -> int option

(** [name t id] is the string with id [id].
    @raise Invalid_argument on an id this interner never issued. *)
val name : t -> int -> string

(** [mem_id t id] — was [id] issued by this interner? *)
val mem_id : t -> int -> bool
